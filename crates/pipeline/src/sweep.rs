//! Single-pass multi-configuration replay: [`SweepReplay`].
//!
//! Every IPC study in `bp-core` replays the *same* trace under many
//! predictor or pipeline configurations — the Fig. 7 storage sweep alone
//! simulates each workload 48 times, and the heterogeneous grid study
//! replays 16 different predictors at 6 scalings. [`simulate`](crate::simulate)
//! re-decodes the trace on every call: it re-walks 64-byte
//! [`RetiredInst`](bp_trace::RetiredInst) records, re-runs the cache
//! model, and re-resolves store→load forwarding through a hash map, even
//! though none of that depends on the misprediction flags.
//!
//! [`SweepReplay`] splits the work into a *prepare* pass and cheap
//! *replay* passes:
//!
//! * **Prepare** (once per trace + cache config): decode each record into
//!   a compact 12-byte form — register slots with sentinel encoding (no
//!   `Option` tests in the replay loop), the exact execution latency
//!   (cache model pre-run; load latencies are timing-independent because
//!   the model is accessed in program order), and the store→load
//!   forwarding *link* (the ordinal of the latest earlier store to the
//!   same address — the one `AddrMap` lookup the scalar loop performs).
//! * **Replay** ([`SweepReplay::simulate_many`]): iterate the prepared
//!   records once while stepping up to 16 misprediction-flag lanes in
//!   lockstep. All per-lane state (register scoreboard, rings, store
//!   ready cycles) is stored as [`LaneVec`](crate::lanes::LaneVec) lane
//!   vectors, so the inner loop is straight-line `max`/`add` lane
//!   arithmetic that the compiler auto-vectorizes. The timestamp word `C`
//!   is `u32` whenever a prepare-time bound proves no timestamp can
//!   overflow it (true for any realistically-sized trace), halving
//!   lane-state memory traffic; `u64` remains as the exact fallback.
//!
//! Lane counts that are not powers of two decompose into *chunked lane
//! groups*: 27 streams replay as 16 + 8 + 2 + 1 lanes, each chunk with
//! its own freshly transposed mask stream, so a ragged tail never runs
//! against a stale mask (`lane_chunks` is unit-tested for every count).
//!
//! Independent prepared traces can additionally be *interleaved* through
//! [`simulate_interleaved`]: each trace's lane chunks become resumable
//! cursors that round-robin in bounded instruction slices, so two
//! workloads' table-miss stalls overlap instead of serializing. Cursors
//! share no state, so the result is exactly the per-group
//! [`SweepReplay::simulate_many`] output regardless of interleave
//! granularity.
//!
//! Replay is **bit-identical** to the scalar loop: every lane performs the
//! same integer arithmetic in the same order as one
//! [`simulate`](crate::simulate) call, and the `bp-metrics` pipeline
//! counters advance exactly as if each lane had been its own scalar run
//! (one `pipeline.sim_runs` per lane, summed cycle/flush/bubble totals).
//! The in-crate sweep tests, `tests/lane_properties.rs` in this crate,
//! `tests/differential.rs` at the workspace root, and the unchanged
//! golden fixtures lock this in.

use bp_trace::{InstClass, ReadTraceError, Trace, TraceReader, NUM_REGS};

use crate::cache::{CacheConfig, CacheModel};
use crate::config::PipelineConfig;
use crate::lanes::{CycleWord, LaneVec};
use crate::scoreboard::{AddrMap, PipeCounters, SimStats};

/// Source-register slot that always reads 0 (encodes `src: None`).
const ZERO_SLOT: u8 = NUM_REGS as u8;
/// Destination-register slot whose writes are never read (`dst: None`).
const DUMP_SLOT: u8 = NUM_REGS as u8 + 1;
/// Total register slots per lane: the architectural file plus sentinels,
/// padded to a power of two so slot indices can be masked instead of
/// bounds-checked in the replay loop (valid slots are `< NUM_REGS + 2`,
/// so the mask never changes an in-range index).
const REG_SLOTS: usize = (NUM_REGS + 2).next_power_of_two();

/// `PreparedInst::kind` bit: load with an earlier store to its address.
const KIND_LOAD_FWD: u8 = 1;
/// `PreparedInst::kind` bit: store some later load forwards from (records
/// its ready cycle). Stores nothing ever reads don't set the bit — the
/// replay loop skips their lane-vector bookkeeping entirely.
const KIND_STORE: u8 = 2;
/// `PreparedInst::kind` bit: conditional branch (consumes one flag).
const KIND_BRANCH: u8 = 4;

/// One trace record, pre-decoded for the replay loop.
#[derive(Clone, Copy)]
struct PreparedInst {
    /// First source slot (`ZERO_SLOT` when absent).
    src1: u8,
    /// Second source slot (`ZERO_SLOT` when absent).
    src2: u8,
    /// Destination slot (`DUMP_SLOT` when absent).
    dst: u8,
    /// `KIND_*` bit set; 0 for plain ALU-like records.
    kind: u8,
    /// Execution latency in cycles (cache model already applied).
    latency: u32,
    /// Store ordinal: own ordinal for stores, forwarding source for
    /// `KIND_LOAD_FWD` loads, unused otherwise.
    link: u32,
}

/// A trace prepared for single-pass multi-configuration replay.
///
/// Construction runs the config-independent part of the timing model once
/// (trace decode, cache latencies, store→load forwarding links);
/// [`SweepReplay::simulate`] / [`SweepReplay::simulate_many`] then replay
/// misprediction-flag streams against it at any pipeline scaling built
/// from the same base configuration.
///
/// # Examples
///
/// ```
/// use bp_pipeline::{simulate, PipelineConfig, SweepReplay};
/// use bp_predictors::{misprediction_flags, AlwaysTaken, TageScL};
/// use bp_workloads::specint_suite;
///
/// let trace = specint_suite()[1].trace(0, 20_000);
/// let cfg = PipelineConfig::skylake();
/// let tage = misprediction_flags(&mut TageScL::kb8(), &trace);
/// let naive = misprediction_flags(&mut AlwaysTaken, &trace);
///
/// let sweep = SweepReplay::new(&trace, &cfg);
/// let stats = sweep.simulate_many(&[&tage, &naive], &cfg.scaled(8));
/// // Bit-identical to two scalar replays of the same streams.
/// assert_eq!(stats[0], simulate(&trace, &tage, &cfg.scaled(8)));
/// assert_eq!(stats[1], simulate(&trace, &naive, &cfg.scaled(8)));
/// ```
pub struct SweepReplay {
    insts: Vec<PreparedInst>,
    cond_branches: usize,
    store_slots: usize,
    /// L2/DRAM bandwidth floor of the access stream (config-independent
    /// across pipeline scalings, so computed once here).
    floor_cycles: u64,
    /// Sum of all execution latencies — one term of the timestamp upper
    /// bound that licenses the 32-bit replay lanes.
    latency_sum: u64,
    cache: CacheConfig,
    mul_latency: u32,
}

/// Compact store bookkeeping to the stores some load forwards from: only
/// their ready cycles are ever read back, so the rest drop their
/// `KIND_STORE` bit (and lane-vector write) outright. Returns the number
/// of store slots the replay loop must track.
fn compact_store_links(insts: &mut [PreparedInst], stores: u32) -> u32 {
    let mut remap = vec![u32::MAX; stores as usize];
    for inst in insts.iter() {
        if inst.kind & KIND_LOAD_FWD != 0 {
            remap[inst.link as usize] = 0;
        }
    }
    let mut forwarded = 0u32;
    for slot in &mut remap {
        if *slot == 0 {
            *slot = forwarded;
            forwarded += 1;
        }
    }
    for inst in insts.iter_mut() {
        if inst.kind & KIND_LOAD_FWD != 0 {
            inst.link = remap[inst.link as usize];
        } else if inst.kind & KIND_STORE != 0 {
            match remap[inst.link as usize] {
                u32::MAX => inst.kind &= !KIND_STORE,
                new => inst.link = new,
            }
        }
    }
    forwarded
}

/// One record range being collected by a [`RangePreparer`].
struct RangeAcc {
    lo: u64,
    hi: u64,
    insts: Vec<PreparedInst>,
    /// Global store ordinal when the range began (links below it point
    /// at stores outside the range and are dropped).
    stores_before: u64,
    started: bool,
    /// `(l2 hits, memory accesses)` cache counters at range entry/exit,
    /// for the per-range bandwidth floor.
    cache_before: (u64, u64),
    cache_after: (u64, u64),
    latency_sum: u64,
    cond_branches: usize,
}

/// Incremental multi-range preparation with *functionally warmed*
/// microarchitectural state.
///
/// [`SweepReplay::prepare`] starts its cache model and store-forwarding
/// map cold, which is exact for whole traces but systematically biases a
/// mid-trace excerpt: its first thousands of loads would miss a cache
/// the full replay has long since warmed. `RangePreparer` instead runs
/// one cache model and one forwarding map continuously over the *entire*
/// stream — feeding every record — while emitting prepared instructions
/// only for the requested record ranges. Sampled replay
/// ([`crate::SampledReplay`]) uses this so a representative interval's
/// load latencies are the ones the full replay would have seen.
///
/// Ranges may overlap (a warm-up prefix sharing records with a
/// neighbouring interval); each range accounts independently. A load
/// whose forwarding store precedes the range keeps its cache latency but
/// drops the forwarding link — the store's ready cycle does not exist
/// inside the excerpt.
pub struct RangePreparer {
    cache: CacheModel,
    last_store: AddrMap,
    stores: u64,
    offset: u64,
    accs: Vec<RangeAcc>,
    cache_config: CacheConfig,
    mul_latency: u32,
}

impl RangePreparer {
    /// A preparer collecting `ranges` (each `[lo, hi)` in record
    /// coordinates) under `config`'s cache hierarchy and multiply
    /// latency.
    #[must_use]
    pub fn new(config: &PipelineConfig, ranges: &[(u64, u64)]) -> Self {
        RangePreparer {
            cache: CacheModel::new(config.cache.clone()),
            last_store: AddrMap::with_capacity(1024),
            stores: 0,
            offset: 0,
            accs: ranges
                .iter()
                .map(|&(lo, hi)| RangeAcc {
                    lo,
                    hi,
                    insts: Vec::new(),
                    stores_before: 0,
                    started: false,
                    cache_before: (0, 0),
                    cache_after: (0, 0),
                    latency_sum: 0,
                    cond_branches: 0,
                })
                .collect(),
            cache_config: config.cache.clone(),
            mul_latency: config.mul_latency,
        }
    }

    /// Feeds the next records of the stream, in order. Every record
    /// advances the warmed cache/forwarding state; records inside a
    /// range are additionally prepared into it.
    pub fn feed(&mut self, chunk: &[bp_trace::RetiredInst]) {
        for inst in chunk {
            let idx = self.offset;
            for acc in &mut self.accs {
                if !acc.started && idx >= acc.lo && idx < acc.hi {
                    acc.started = true;
                    acc.stores_before = self.stores;
                    let (_, l2, mem) = self.cache.stats();
                    acc.cache_before = (l2, mem);
                }
            }
            let latency = match inst.class {
                InstClass::Load => self.cache.access(inst.mem_addr),
                InstClass::Mul => self.mul_latency,
                InstClass::Store => {
                    let _ = self.cache.access(inst.mem_addr);
                    1
                }
                _ => 1,
            };
            let mut fwd_store: Option<u64> = None;
            let mut store_ord: Option<u64> = None;
            match inst.class {
                InstClass::Load => fwd_store = self.last_store.get(inst.mem_addr),
                InstClass::Store => {
                    store_ord = Some(self.stores);
                    self.last_store.insert(inst.mem_addr, self.stores);
                    self.stores += 1;
                }
                _ => {}
            }
            let cond = inst.is_conditional_branch();
            for acc in &mut self.accs {
                if idx < acc.lo || idx >= acc.hi {
                    continue;
                }
                let mut kind = 0u8;
                let mut link = u32::MAX;
                if let Some(g) = fwd_store {
                    if g >= acc.stores_before {
                        kind |= KIND_LOAD_FWD;
                        link = (g - acc.stores_before) as u32;
                    }
                }
                if let Some(g) = store_ord {
                    kind |= KIND_STORE;
                    link = (g - acc.stores_before) as u32;
                }
                if cond {
                    kind |= KIND_BRANCH;
                    acc.cond_branches += 1;
                }
                acc.latency_sum += u64::from(latency);
                let (_, l2, mem) = self.cache.stats();
                acc.cache_after = (l2, mem);
                acc.insts.push(PreparedInst {
                    src1: inst.src1.map_or(ZERO_SLOT, |r| r.index() as u8),
                    src2: inst.src2.map_or(ZERO_SLOT, |r| r.index() as u8),
                    dst: inst.dst.map_or(DUMP_SLOT, |r| r.index() as u8),
                    kind,
                    latency,
                    link,
                });
            }
            self.offset += 1;
        }
    }

    /// Records fed so far.
    #[must_use]
    pub fn records_fed(&self) -> u64 {
        self.offset
    }

    /// Finishes the pass: one [`SweepReplay`] per requested range, in
    /// order. A range the stream never reached yields an empty replay
    /// ([`SweepReplay::is_empty`]).
    #[must_use]
    pub fn finish(self) -> Vec<SweepReplay> {
        let cache_config = self.cache_config;
        let mul_latency = self.mul_latency;
        self.accs
            .into_iter()
            .map(|mut acc| {
                let stores = acc
                    .insts
                    .iter()
                    .filter(|i| i.kind & KIND_STORE != 0)
                    .count() as u32;
                let forwarded = compact_store_links(&mut acc.insts, stores);
                // Per-range bandwidth floor from the cache-counter deltas
                // this range's accesses produced.
                let l2_accesses =
                    (acc.cache_after.0 + acc.cache_after.1) - (acc.cache_before.0 + acc.cache_before.1);
                let misses = acc.cache_after.1 - acc.cache_before.1;
                let floor_cycles = (l2_accesses * u64::from(cache_config.l2_service))
                    .max(misses * u64::from(cache_config.mem_service));
                SweepReplay {
                    insts: acc.insts,
                    cond_branches: acc.cond_branches,
                    store_slots: forwarded as usize,
                    floor_cycles,
                    latency_sum: acc.latency_sum,
                    cache: cache_config.clone(),
                    mul_latency,
                }
            })
            .collect()
    }
}

impl SweepReplay {
    /// Prepares `trace` for replay under `config`'s cache hierarchy and
    /// multiply latency (both fixed across [`PipelineConfig::scaled`]
    /// scalings, so one preparation serves a whole scaling sweep).
    #[must_use]
    pub fn new(trace: &Trace, config: &PipelineConfig) -> Self {
        Self::prepare(trace.reader(), config).expect("in-memory reader cannot fail")
    }

    /// [`SweepReplay::new`] over any [`TraceReader`]: consumes the record
    /// stream chunk-by-chunk, so preparing from a block-wise file decoder
    /// never materializes the trace — only the 12-byte prepared form is
    /// kept. The prepared replay is bit-identical to one built from the
    /// same records in memory.
    ///
    /// # Errors
    ///
    /// Propagates any [`ReadTraceError`] from the underlying stream.
    pub fn prepare<R: TraceReader>(
        mut reader: R,
        config: &PipelineConfig,
    ) -> Result<Self, ReadTraceError> {
        let len_hint = reader
            .len_hint()
            .map_or(0, |n| usize::try_from(n).unwrap_or(usize::MAX))
            // The hint may come from an untrusted file header: seed
            // capacities, don't trust it with a huge allocation.
            .min(1 << 20);
        let mut cache = CacheModel::new(config.cache.clone());
        // Latest store ordinal per address — the prepare-time equivalent
        // of the scalar loop's forwarding map, on the same SipHash-free
        // open-addressed map the scalar loop uses.
        let mut last_store = AddrMap::with_capacity(len_hint / 4);
        let mut insts = Vec::with_capacity(len_hint);
        let mut stores = 0u32;
        let mut cond_branches = 0usize;
        let mut latency_sum = 0u64;
        while let Some(chunk) = reader.next_chunk()? {
            // Cooperative cancellation at chunk granularity: a cancelled
            // prepare stops within one streamed block.
            bp_metrics::cancel::checkpoint("sweep.prepare");
            for inst in chunk {
                let latency = match inst.class {
                    InstClass::Load => cache.access(inst.mem_addr),
                    InstClass::Mul => config.mul_latency,
                    InstClass::Store => {
                        // Stores retire from the store buffer; they still
                        // allocate the line so later loads hit.
                        let _ = cache.access(inst.mem_addr);
                        1
                    }
                    _ => 1,
                };
                latency_sum += u64::from(latency);
                let mut kind = 0u8;
                let mut link = u32::MAX;
                match inst.class {
                    InstClass::Load => {
                        if let Some(ord) = last_store.get(inst.mem_addr) {
                            kind |= KIND_LOAD_FWD;
                            link = ord as u32;
                        }
                    }
                    InstClass::Store => {
                        kind |= KIND_STORE;
                        link = stores;
                        last_store.insert(inst.mem_addr, u64::from(stores));
                        stores += 1;
                    }
                    _ => {}
                }
                if inst.is_conditional_branch() {
                    kind |= KIND_BRANCH;
                    cond_branches += 1;
                }
                insts.push(PreparedInst {
                    src1: inst.src1.map_or(ZERO_SLOT, |r| r.index() as u8),
                    src2: inst.src2.map_or(ZERO_SLOT, |r| r.index() as u8),
                    dst: inst.dst.map_or(DUMP_SLOT, |r| r.index() as u8),
                    kind,
                    latency,
                    link,
                });
            }
        }
        let forwarded = compact_store_links(&mut insts, stores);
        Ok(SweepReplay {
            insts,
            cond_branches,
            store_slots: forwarded as usize,
            floor_cycles: cache.bandwidth_floor_cycles(),
            latency_sum,
            cache: config.cache.clone(),
            mul_latency: config.mul_latency,
        })
    }

    /// Instructions in the prepared trace.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the prepared trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Dynamic conditional branches per replay lane.
    #[must_use]
    pub fn cond_branch_count(&self) -> usize {
        self.cond_branches
    }

    /// Replays one misprediction stream — bit-identical to
    /// [`simulate`](crate::simulate) on the source trace.
    #[must_use]
    pub fn simulate(&self, mispredicted: &[bool], config: &PipelineConfig) -> SimStats {
        let mut out = [SimStats::default()];
        let mut cursor = self.chunk_cursor(&[mispredicted], config);
        drive_to_end(cursor.as_mut());
        cursor.finish(&mut out);
        out[0]
    }

    /// Replays every stream in `flag_streams` through one pass over the
    /// prepared trace, returning one [`SimStats`] per stream in order.
    ///
    /// Streams are stepped in lockstep, up to 16 lanes at a time (ragged
    /// counts decompose into 16/8/4/2/1-lane chunks, each with its own
    /// mask stream); each lane's result (and its contribution to the
    /// `bp-metrics` pipeline counters) is identical to a scalar
    /// [`simulate`](crate::simulate) call with the same flags.
    ///
    /// # Panics
    ///
    /// Panics if any stream has fewer entries than the trace has
    /// conditional branches, or if `config` differs from the preparation
    /// configuration in cache hierarchy or multiply latency (pipeline
    /// *capacity* — widths, ROB, penalty — may vary freely).
    #[must_use]
    pub fn simulate_many(&self, flag_streams: &[&[bool]], config: &PipelineConfig) -> Vec<SimStats> {
        let mut out = vec![SimStats::default(); flag_streams.len()];
        let mut done = 0;
        while done < flag_streams.len() {
            let take = lane_chunk(flag_streams.len() - done);
            let mut cursor = self.chunk_cursor(&flag_streams[done..done + take], config);
            drive_to_end(cursor.as_mut());
            cursor.finish(&mut out[done..done + take]);
            done += take;
        }
        out
    }

    /// Upper bound on every timestamp the replay loop can produce under
    /// `config`.
    ///
    /// By induction over the prepared records: each instruction advances
    /// the running maximum of all lane state (including the redirect
    /// base) by at most `latency + 1`, plus `penalty` when a mispredicted
    /// branch redirects the front end. Summing the worst case over the
    /// whole trace — every branch mispredicted in every lane — gives
    /// `Σ(latency_i + 1) + branches·penalty`; the `+ 2` per record leaves
    /// a full `len` of slack for the loop's `+ 1` intermediates.
    fn cycle_bound(&self, config: &PipelineConfig) -> u64 {
        self.latency_sum
            + 2 * self.insts.len() as u64
            + self.cond_branches as u64 * u64::from(config.mispredict_penalty)
    }

    /// Builds the monomorphized resumable cursor for one lane chunk.
    ///
    /// Lane word width is chosen per call: when [`Self::cycle_bound`]
    /// fits in 32 bits — every realistically-sized trace — lanes run on
    /// `u32` timestamps, halving lane-state memory traffic and doubling
    /// SIMD density; otherwise the `u64` path keeps the result exact.
    fn chunk_cursor<'a>(
        &'a self,
        flags: &[&'a [bool]],
        config: &PipelineConfig,
    ) -> Box<dyn LaneCursor + 'a> {
        assert!(
            config.cache == self.cache && config.mul_latency == self.mul_latency,
            "SweepReplay prepared under a different cache/mul-latency configuration"
        );
        let metrics = bp_metrics::enabled();
        let narrow = self.cycle_bound(config) < u64::from(u32::MAX);
        macro_rules! dispatch {
            ($($k:literal),*) => {
                match (flags.len(), metrics, narrow) {
                    $(
                        ($k, false, true) => {
                            Box::new(ChunkCursor::<$k, false, u32>::new(self, flags, config)) as _
                        }
                        ($k, true, true) => {
                            Box::new(ChunkCursor::<$k, true, u32>::new(self, flags, config)) as _
                        }
                        ($k, false, false) => {
                            Box::new(ChunkCursor::<$k, false, u64>::new(self, flags, config)) as _
                        }
                        ($k, true, false) => {
                            Box::new(ChunkCursor::<$k, true, u64>::new(self, flags, config)) as _
                        }
                    )*
                    (k, ..) => unreachable!("unsupported lane count {k}"),
                }
            };
        }
        dispatch!(1, 2, 4, 8, 16)
    }
}

/// The largest supported lane-chunk size ≤ `left`.
///
/// `simulate_many` and the interleave cursors decompose any stream count
/// into chunks of these sizes; because every chunk transposes its own
/// flag streams into a fresh mask vector, a ragged tail (say 3 streams
/// after a 16-lane chunk) can never replay against a previous chunk's
/// mask.
fn lane_chunk(left: usize) -> usize {
    debug_assert!(left > 0);
    match left {
        16.. => 16,
        8.. => 8,
        4.. => 4,
        2.. => 2,
        _ => 1,
    }
}

/// A resumable lane-chunk replay: the monomorphized hot loop behind both
/// [`SweepReplay::simulate_many`] (one `advance(usize::MAX)`) and
/// [`simulate_interleaved`] (bounded `advance` slices, round-robin).
trait LaneCursor {
    /// Replays up to `n` further prepared instructions; returns `true`
    /// while instructions remain.
    fn advance(&mut self, n: usize) -> bool;
    /// Writes the final per-lane [`SimStats`] (and `bp-metrics` pipeline
    /// counters) once the cursor has been advanced to the end of the
    /// trace. `out` must hold exactly this chunk's lane count.
    fn finish(self: Box<Self>, out: &mut [SimStats]);
}

/// The per-chunk lockstep replay state: the scalar `simulate_impl`
/// arithmetic, with every cycle variable widened to a
/// [`LaneVec<C, K>`] lane vector.
///
/// `C` is the timestamp word (`u32` or `u64`); the caller guarantees via
/// `SweepReplay::cycle_bound` that no timestamp can overflow it, so the
/// lane arithmetic below is exact in either width. Counters that
/// accumulate across the whole trace (mispredictions, bubbles, stalls)
/// stay `u64` regardless.
struct ChunkCursor<'a, const K: usize, const METRICS: bool, C: CycleWord> {
    replay: &'a SweepReplay,
    /// One K-bit mask per conditional branch, transposed from the flag
    /// streams at construction: the hot loop tests a single word, and
    /// skips the lane update outright when no lane mispredicts — by far
    /// the common case for the well-trained predictors these sweeps
    /// compare.
    masks: Vec<u32>,
    /// Next prepared-instruction index.
    pos: usize,
    flag_idx: usize,
    penalty: C,
    /// Per-lane ready cycles per register slot (+ sentinels). A
    /// power-of-two-sized array: `& (REG_SLOTS - 1)` indexing compiles to
    /// an unchecked access.
    reg_ready: [LaneVec<C, K>; REG_SLOTS],
    /// Per-lane ready cycle of every forwarded store, by store ordinal.
    store_done: Vec<LaneVec<C, K>>,
    fetch_ring: LaneRing<K, C>,
    /// ROB occupancy and retire bandwidth both constrain on the same
    /// retirement sequence, just `rob_size` vs `retire_width` entries
    /// back — one shared ring with two lagged cursors records it once.
    retire_ring: LaggedRing<K, C>,
    fetch_base: LaneVec<C, K>,
    last_retire: LaneVec<C, K>,
    refetch_bubbles: LaneVec<u64, K>,
    rob_stalls: LaneVec<u64, K>,
    mispredictions: LaneVec<u64, K>,
    cond_branches: u64,
}

impl<'a, const K: usize, const METRICS: bool, C: CycleWord> ChunkCursor<'a, K, METRICS, C> {
    fn new(replay: &'a SweepReplay, flags: &[&[bool]], config: &PipelineConfig) -> Self {
        assert_eq!(flags.len(), K, "chunk size matches K");
        let mut masks = vec![0u32; replay.cond_branches];
        for (k, lane_flags) in flags.iter().enumerate() {
            assert!(
                lane_flags.len() >= replay.cond_branches,
                "need one misprediction flag per conditional branch"
            );
            for (m, &f) in masks.iter_mut().zip(*lane_flags) {
                *m |= u32::from(f) << k;
            }
        }
        ChunkCursor {
            replay,
            masks,
            pos: 0,
            flag_idx: 0,
            penalty: C::narrow(u64::from(config.mispredict_penalty)),
            reg_ready: [LaneVec::default(); REG_SLOTS],
            store_done: vec![LaneVec::default(); replay.store_slots.max(1)],
            fetch_ring: LaneRing::new(config.fetch_width as usize),
            retire_ring: LaggedRing::new(config.rob_size as usize, config.retire_width as usize),
            fetch_base: LaneVec::default(),
            last_retire: LaneVec::default(),
            refetch_bubbles: LaneVec::default(),
            rob_stalls: LaneVec::default(),
            mispredictions: LaneVec::default(),
            cond_branches: 0,
        }
    }
}

impl<const K: usize, const METRICS: bool, C: CycleWord> LaneCursor
    for ChunkCursor<'_, K, METRICS, C>
{
    fn advance(&mut self, n: usize) -> bool {
        let end = self.pos.saturating_add(n).min(self.replay.insts.len());
        // Hot lane vectors live in locals across the slice so the
        // compiler keeps them in registers; ring/scoreboard state is
        // memory-resident either way.
        let mut fetch_base = self.fetch_base;
        let mut last_retire = self.last_retire;
        let mut flag_idx = self.flag_idx;
        let mut cond_branches = self.cond_branches;
        let penalty = self.penalty;

        for inst in &self.replay.insts[self.pos..end] {
            // Enter the window: front-end bandwidth, redirect stall, ROB.
            let fetch_old = self.fetch_ring.oldest();
            let rob_free = self.retire_ring.oldest_rob();
            let bw_enter = fetch_base.max(fetch_old.add_scalar(C::ONE));
            if METRICS {
                self.rob_stalls.add_mask_bits(rob_free.gt_mask(bw_enter));
            }
            let enter = bw_enter.max(rob_free);
            self.fetch_ring.record(enter);

            // Dataflow: sources ready + latency (sentinel slots make the
            // reads unconditional).
            let s1 = self.reg_ready[inst.src1 as usize & (REG_SLOTS - 1)];
            let s2 = self.reg_ready[inst.src2 as usize & (REG_SLOTS - 1)];
            let latency = C::narrow(u64::from(inst.latency));
            let mut done = enter.max(s1).max(s2).add_scalar(latency);
            if inst.kind & KIND_LOAD_FWD != 0 {
                let src = self.store_done[inst.link as usize];
                done = done.max(src.add_scalar(C::ONE));
            }
            if inst.kind & KIND_STORE != 0 {
                self.store_done[inst.link as usize] = done;
            }
            self.reg_ready[inst.dst as usize & (REG_SLOTS - 1)] = done;

            // Branch handling: a mispredicted conditional branch stalls
            // the front end until it resolves plus the refill penalty.
            if inst.kind & KIND_BRANCH != 0 {
                cond_branches += 1;
                let mask = self.masks[flag_idx];
                if mask != 0 {
                    self.mispredictions.add_mask_bits(mask);
                    let redirect = done.add_scalar(penalty);
                    if METRICS {
                        let bubbles = redirect.sub_sat(enter.add_scalar(C::ONE)).widen();
                        self.refetch_bubbles.add_masked(mask, bubbles);
                    }
                    fetch_base = fetch_base.masked_max(mask, redirect);
                }
                flag_idx += 1;
            }

            // In-order retirement with bandwidth.
            let bw_old = self.retire_ring.oldest_bw();
            let retire = done.max(last_retire).max(bw_old.add_scalar(C::ONE));
            self.retire_ring.record(retire);
            last_retire = retire;
        }

        self.fetch_base = fetch_base;
        self.last_retire = last_retire;
        self.flag_idx = flag_idx;
        self.cond_branches = cond_branches;
        self.pos = end;
        self.pos < self.replay.insts.len()
    }

    fn finish(self: Box<Self>, out: &mut [SimStats]) {
        assert_eq!(out.len(), K, "output slice matches lane count");
        assert_eq!(self.pos, self.replay.insts.len(), "cursor fully advanced");
        let n = self.replay.insts.len() as u64;
        for s in out.iter_mut() {
            *s = SimStats {
                instructions: n,
                ..SimStats::default()
            };
        }
        if self.replay.insts.is_empty() {
            // The scalar loop returns before touching the cache floor or
            // the metrics counters; so do we.
            return;
        }
        for (k, s) in out.iter_mut().enumerate() {
            s.cycles = self.last_retire.0[k]
                .widen()
                .max(self.replay.floor_cycles)
                .max(1);
            s.cond_branches = self.cond_branches;
            s.mispredictions = self.mispredictions.0[k];
        }

        if METRICS {
            // Each lane counts as one logical simulation, so a sweep's
            // manifest matches the per-config replays it replaced.
            let counters = PipeCounters::get();
            counters.sim_runs.add(K as u64);
            counters.instructions.add(n * K as u64);
            counters.cycles.add(out.iter().map(|s| s.cycles).sum());
            counters.flushes.add(self.mispredictions.lane_sum());
            counters.refetch_bubbles.add(self.refetch_bubbles.lane_sum());
            counters.rob_stalls.add(self.rob_stalls.lane_sum());
        }
    }
}

/// One prepared trace plus its flag streams and pipeline configuration,
/// for [`simulate_interleaved`].
pub struct InterleaveGroup<'a> {
    replay: &'a SweepReplay,
    flags: &'a [&'a [bool]],
    config: &'a PipelineConfig,
}

impl<'a> InterleaveGroup<'a> {
    /// Bundles a prepared trace with the flag streams to replay against
    /// it and the pipeline configuration to replay under. The usual
    /// [`SweepReplay::simulate_many`] rules apply per group: every stream
    /// needs one flag per conditional branch, and `config` must share the
    /// preparation's cache hierarchy and multiply latency.
    #[must_use]
    pub fn new(
        replay: &'a SweepReplay,
        flags: &'a [&'a [bool]],
        config: &'a PipelineConfig,
    ) -> Self {
        InterleaveGroup {
            replay,
            flags,
            config,
        }
    }
}

/// Slice size for cancellable replay: matches the 16K-record streaming
/// block, so a cancelled study stops within one block of work.
const CANCEL_SLICE: usize = 16 * 1024;

/// Runs a cursor to exhaustion. Without a cancellation scope (every
/// production run) this is the single `advance(usize::MAX)` fast path;
/// under a scope the cursor advances in [`CANCEL_SLICE`] steps with a
/// cancellation checkpoint between slices.
fn drive_to_end(cursor: &mut (dyn LaneCursor + '_)) {
    if !bp_metrics::cancel::active() {
        cursor.advance(usize::MAX);
        return;
    }
    loop {
        bp_metrics::cancel::checkpoint("sweep.replay");
        if !cursor.advance(CANCEL_SLICE) {
            return;
        }
    }
}

/// Replays several independent prepared traces in interleaved lockstep.
///
/// Each group's lane chunks become resumable cursors; the cursors
/// round-robin in `granularity`-instruction slices until every trace is
/// exhausted. Interleaving lets one workload's compute-bound stretches
/// overlap another's prepared-record and mask cache misses — the two
/// streams prefetch independently — without threads.
///
/// Cursors share no state, so the output is **exactly** what each group's
/// [`SweepReplay::simulate_many`] call would return, for every
/// granularity (including `usize::MAX`, which degenerates to sequential
/// replay); `crates/pipeline/tests/lane_properties.rs` locks this in.
/// Returns one `Vec<SimStats>` per group, in group order.
///
/// # Panics
///
/// Panics if `granularity` is 0, or on any per-group violation of the
/// [`SweepReplay::simulate_many`] contract (short flag streams, cache or
/// multiply-latency mismatch).
#[must_use]
pub fn simulate_interleaved(
    groups: &[InterleaveGroup<'_>],
    granularity: usize,
) -> Vec<Vec<SimStats>> {
    assert!(granularity > 0, "interleave granularity must be positive");
    struct Slot<'a> {
        cursor: Box<dyn LaneCursor + 'a>,
        group: usize,
        lanes: std::ops::Range<usize>,
        live: bool,
    }
    let mut slots: Vec<Slot<'_>> = Vec::new();
    for (g, group) in groups.iter().enumerate() {
        let mut done = 0;
        while done < group.flags.len() {
            let take = lane_chunk(group.flags.len() - done);
            slots.push(Slot {
                cursor: group
                    .replay
                    .chunk_cursor(&group.flags[done..done + take], group.config),
                group: g,
                lanes: done..done + take,
                live: !group.replay.is_empty(),
            });
            done += take;
        }
    }
    let mut any_live = slots.iter().any(|s| s.live);
    while any_live {
        // One cancellation poll per round-robin round: each round is at
        // most `granularity` instructions per cursor.
        bp_metrics::cancel::checkpoint("sweep.replay");
        any_live = false;
        for slot in &mut slots {
            if slot.live {
                slot.live = slot.cursor.advance(granularity);
                any_live |= slot.live;
            }
        }
    }
    let mut out: Vec<Vec<SimStats>> = groups
        .iter()
        .map(|g| vec![SimStats::default(); g.flags.len()])
        .collect();
    for slot in slots {
        slot.cursor.finish(&mut out[slot.group][slot.lanes]);
    }
    out
}

/// A per-lane timestamp ring read at two different lags.
///
/// Records one sequence (retirement timestamps) and answers "the value
/// `rob` steps ago" and "the value `bw` steps ago" from the same buffer —
/// the retire sequence is written once per instruction instead of once
/// per constraint. Slots start at 0, matching a `LaneRing`'s behaviour
/// for not-yet-seen history.
struct LaggedRing<const K: usize, C: CycleWord> {
    buf: Vec<LaneVec<C, K>>,
    /// Next slot to write: the value `len` steps back.
    write: usize,
    /// Slot holding the value `rob` steps back.
    rob_cursor: usize,
    /// Slot holding the value `bw` steps back.
    bw_cursor: usize,
}

impl<const K: usize, C: CycleWord> LaggedRing<K, C> {
    fn new(rob: usize, bw: usize) -> Self {
        let rob = rob.max(1);
        let bw = bw.max(1);
        let len = rob.max(bw);
        LaggedRing {
            buf: vec![LaneVec::default(); len],
            write: 0,
            rob_cursor: (len - rob) % len,
            bw_cursor: (len - bw) % len,
        }
    }

    /// The retirement timestamp `rob` records ago (0 before that).
    #[inline]
    fn oldest_rob(&self) -> LaneVec<C, K> {
        self.buf[self.rob_cursor]
    }

    /// The retirement timestamp `bw` records ago (0 before that).
    #[inline]
    fn oldest_bw(&self) -> LaneVec<C, K> {
        self.buf[self.bw_cursor]
    }

    /// Records the current retirement timestamps and advances all
    /// cursors.
    #[inline]
    fn record(&mut self, cycles: LaneVec<C, K>) {
        self.buf[self.write] = cycles;
        let len = self.buf.len();
        self.write += 1;
        if self.write == len {
            self.write = 0;
        }
        self.rob_cursor += 1;
        if self.rob_cursor == len {
            self.rob_cursor = 0;
        }
        self.bw_cursor += 1;
        if self.bw_cursor == len {
            self.bw_cursor = 0;
        }
    }
}

/// A fixed-size ring of per-lane cycle timestamps with a shared cursor —
/// the lane-vector form of the scalar loop's `CycleRing`.
struct LaneRing<const K: usize, C: CycleWord> {
    buf: Vec<LaneVec<C, K>>,
    cursor: usize,
}

impl<const K: usize, C: CycleWord> LaneRing<K, C> {
    fn new(len: usize) -> Self {
        LaneRing {
            buf: vec![LaneVec::default(); len.max(1)],
            cursor: 0,
        }
    }

    /// Timestamps `len` positions ago: the slot the next `record`
    /// overwrites.
    #[inline]
    fn oldest(&self) -> LaneVec<C, K> {
        self.buf[self.cursor]
    }

    /// Records the current event's per-lane timestamps and advances.
    #[inline]
    fn record(&mut self, cycles: LaneVec<C, K>) {
        self.buf[self.cursor] = cycles;
        self.cursor += 1;
        if self.cursor == self.buf.len() {
            self.cursor = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;
    use bp_trace::{Reg, RetiredInst, TraceMeta};

    fn cfg() -> PipelineConfig {
        PipelineConfig::skylake()
    }

    /// A mixed synthetic trace exercising loads, stores, forwarding,
    /// multiplies and branches.
    fn mixed_trace(n: u64) -> (Trace, usize) {
        let mut t = Trace::new(TraceMeta::new("mix", 0));
        let mut branches = 0;
        let mut state = 7u64;
        for i in 0..n {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            match state % 7 {
                0 => {
                    t.push(RetiredInst::cond_branch(
                        i * 4,
                        state & 2 == 0,
                        0,
                        Some((state % 8) as u8),
                        None,
                    ));
                    branches += 1;
                }
                1 => t.push(RetiredInst::mem(
                    i * 4,
                    InstClass::Load,
                    (state >> 8) % 4096,
                    None,
                    None,
                    Some(Reg::new((state % 16) as u8)),
                    0,
                )),
                2 => t.push(RetiredInst::mem(
                    i * 4,
                    InstClass::Store,
                    (state >> 8) % 4096,
                    Some(Reg::new((state % 16) as u8)),
                    None,
                    None,
                    0,
                )),
                3 => t.push(RetiredInst::op(
                    i * 4,
                    InstClass::Mul,
                    Some(Reg::new((state % 16) as u8)),
                    Some(Reg::new(((state >> 4) % 16) as u8)),
                    Some(Reg::new(((state >> 8) % 16) as u8)),
                    0,
                )),
                _ => t.push(RetiredInst::op(
                    i * 4,
                    InstClass::Alu,
                    Some(Reg::new((state % 16) as u8)),
                    None,
                    Some(Reg::new(((state >> 4) % 16) as u8)),
                    0,
                )),
            }
        }
        (t, branches)
    }

    fn flag_stream(branches: usize, seed: u64, rate: u64) -> Vec<bool> {
        let mut state = seed;
        (0..branches)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                state % 100 < rate
            })
            .collect()
    }

    #[test]
    fn lanes_match_scalar_simulate_exactly() {
        let (t, branches) = mixed_trace(30_000);
        let streams: Vec<Vec<bool>> = (0..7)
            .map(|i| flag_stream(branches, 11 + i, i * 9))
            .collect();
        let refs: Vec<&[bool]> = streams.iter().map(Vec::as_slice).collect();
        for scale in [1, 4, 32] {
            let c = cfg().scaled(scale);
            let sweep = SweepReplay::new(&t, &cfg());
            let many = sweep.simulate_many(&refs, &c);
            for (f, got) in refs.iter().zip(&many) {
                assert_eq!(*got, simulate(&t, f, &c), "scale {scale}");
            }
        }
    }

    #[test]
    fn sixteen_lanes_match_scalar() {
        // A full 16-wide chunk — the widest monomorphization — must agree
        // with 16 scalar replays.
        let (t, branches) = mixed_trace(12_000);
        let streams: Vec<Vec<bool>> = (0..16)
            .map(|i| flag_stream(branches, 101 + i, (i * 5) % 70))
            .collect();
        let refs: Vec<&[bool]> = streams.iter().map(Vec::as_slice).collect();
        let sweep = SweepReplay::new(&t, &cfg());
        let many = sweep.simulate_many(&refs, &cfg());
        for (f, got) in refs.iter().zip(&many) {
            assert_eq!(*got, simulate(&t, f, &cfg()));
        }
    }

    #[test]
    fn single_lane_matches_scalar() {
        let (t, branches) = mixed_trace(5_000);
        let flags = flag_stream(branches, 3, 20);
        let sweep = SweepReplay::new(&t, &cfg());
        assert_eq!(sweep.simulate(&flags, &cfg()), simulate(&t, &flags, &cfg()));
    }

    #[test]
    fn u64_fallback_matches_scalar() {
        // A misprediction penalty large enough to push the cycle bound
        // past 32 bits forces the wide-lane fallback; it must agree with
        // the scalar loop just like the narrow path does.
        let (t, branches) = mixed_trace(4_000);
        let flags = flag_stream(branches, 5, 30);
        let mut c = cfg();
        c.mispredict_penalty = u32::MAX / 2;
        let sweep = SweepReplay::new(&t, &c);
        assert!(sweep.cycle_bound(&c) >= u64::from(u32::MAX));
        assert_eq!(sweep.simulate(&flags, &c), simulate(&t, &flags, &c));
    }

    #[test]
    fn streamed_prepare_matches_in_memory_prepare() {
        // Preparing from the block-wise file decoder must be bit-identical
        // to preparing from the materialized trace: the cache model, the
        // forwarding links, and the compaction all see the same records
        // in the same order, just delivered in chunks.
        let (t, branches) = mixed_trace(70_000); // several v3 blocks
        let mut bytes = Vec::new();
        t.write_to(&mut bytes).expect("serialize");
        let reader = bp_trace::BptrReader::new(bytes.as_slice()).expect("open");
        let streamed = SweepReplay::prepare(reader, &cfg()).expect("prepare");
        let in_memory = SweepReplay::new(&t, &cfg());
        assert_eq!(streamed.len(), in_memory.len());
        assert_eq!(streamed.cond_branch_count(), in_memory.cond_branch_count());
        let flags = flag_stream(branches, 17, 25);
        assert_eq!(
            streamed.simulate(&flags, &cfg()),
            in_memory.simulate(&flags, &cfg())
        );
    }

    #[test]
    fn empty_trace_is_fine() {
        let t = Trace::new(TraceMeta::new("empty", 0));
        let sweep = SweepReplay::new(&t, &cfg());
        assert!(sweep.is_empty());
        let stats = sweep.simulate_many(&[&[], &[]], &cfg());
        assert_eq!(stats[0], simulate(&t, &[], &cfg()));
        assert_eq!(stats[1], simulate(&t, &[], &cfg()));
    }

    #[test]
    fn empty_trace_interleaves_fine() {
        let t = Trace::new(TraceMeta::new("empty", 0));
        let (t2, branches) = mixed_trace(2_000);
        let c = cfg();
        let empty = SweepReplay::new(&t, &c);
        let full = SweepReplay::new(&t2, &c);
        let flags = flag_stream(branches, 9, 15);
        let empty_flags: [&[bool]; 1] = [&[]];
        let full_flags: [&[bool]; 1] = [&flags];
        let out = simulate_interleaved(
            &[
                InterleaveGroup::new(&empty, &empty_flags, &c),
                InterleaveGroup::new(&full, &full_flags, &c),
            ],
            64,
        );
        assert_eq!(out[0][0], simulate(&t, &[], &c));
        assert_eq!(out[1][0], simulate(&t2, &flags, &c));
    }

    #[test]
    fn lane_count_is_transparent() {
        // 1, 2, 4, 8, 16 and ragged counts must all agree.
        let (t, branches) = mixed_trace(8_000);
        let streams: Vec<Vec<bool>> = (0..19)
            .map(|i| flag_stream(branches, 31 + i, (i * 7) % 60))
            .collect();
        let refs: Vec<&[bool]> = streams.iter().map(Vec::as_slice).collect();
        let sweep = SweepReplay::new(&t, &cfg());
        let all = sweep.simulate_many(&refs, &cfg());
        for (i, f) in refs.iter().enumerate() {
            assert_eq!(all[i], sweep.simulate(f, &cfg()), "lane {i}");
        }
    }

    #[test]
    fn lane_chunks_cover_every_count() {
        // The chunk decomposition must tile any stream count exactly —
        // no chunk larger than the remainder (which would read another
        // chunk's mask) and no lanes left behind.
        for n in 1..=64usize {
            let mut left = n;
            let mut chunks = Vec::new();
            while left > 0 {
                let take = lane_chunk(left);
                assert!(take <= left, "chunk {take} exceeds remainder {left}");
                assert!(
                    matches!(take, 1 | 2 | 4 | 8 | 16),
                    "chunk {take} has no monomorphization"
                );
                chunks.push(take);
                left -= take;
            }
            assert_eq!(chunks.iter().sum::<usize>(), n);
        }
    }

    #[test]
    #[should_panic(expected = "misprediction flag")]
    fn missing_flags_panic() {
        let mut t = Trace::new(TraceMeta::new("b", 0));
        t.push(RetiredInst::cond_branch(4, true, 0, None, None));
        let sweep = SweepReplay::new(&t, &cfg());
        let _ = sweep.simulate(&[], &cfg());
    }

    #[test]
    #[should_panic(expected = "different cache")]
    fn cache_mismatch_panics() {
        let (t, _) = mixed_trace(100);
        let sweep = SweepReplay::new(&t, &cfg());
        let mut other = cfg();
        other.cache.l1_log2_bytes += 1;
        let _ = sweep.simulate(&[true; 100], &other);
    }
}
