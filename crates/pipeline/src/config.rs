//! Pipeline capacity configuration.
//!
//! The paper scales "fetch, decode, execution, load/store buffer, ROB,
//! scheduler, and retire resources" of a Skylake-like core by 1x–32x
//! (Fig. 1). [`PipelineConfig::skylake`] is the 1x baseline;
//! [`PipelineConfig::scaled`] produces the scaled designs. Cache capacity
//! is deliberately *not* scaled — the paper scales core resources only.

use crate::cache::CacheConfig;

/// Capacity and latency parameters of the modeled out-of-order core.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Instructions entering the window per cycle (fetch/decode/dispatch).
    pub fetch_width: u32,
    /// Instructions retiring per cycle.
    pub retire_width: u32,
    /// Reorder-buffer capacity.
    pub rob_size: u32,
    /// Front-end refill penalty after a branch misprediction resolves, in
    /// cycles (pipeline depth).
    pub mispredict_penalty: u32,
    /// Integer multiply latency in cycles.
    pub mul_latency: u32,
    /// Data-cache hierarchy (fixed across pipeline scalings).
    pub cache: CacheConfig,
    /// The capacity scaling factor this configuration represents.
    pub scale: u32,
}

impl PipelineConfig {
    /// The 1x baseline, calibrated to an Intel Skylake-class core.
    #[must_use]
    pub fn skylake() -> Self {
        PipelineConfig {
            fetch_width: 4,
            retire_width: 4,
            rob_size: 224,
            mispredict_penalty: 17,
            mul_latency: 3,
            cache: CacheConfig::skylake(),
            scale: 1,
        }
    }

    /// Scales pipeline *capacity* (widths and buffers) by `factor`,
    /// leaving latencies and the refill penalty fixed, as in the paper's
    /// methodology.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero or greater than 64.
    #[must_use]
    pub fn scaled(&self, factor: u32) -> Self {
        assert!((1..=64).contains(&factor), "scale factor must be 1..=64");
        PipelineConfig {
            fetch_width: self.fetch_width * factor,
            retire_width: self.retire_width * factor,
            rob_size: self.rob_size * factor,
            mispredict_penalty: self.mispredict_penalty,
            mul_latency: self.mul_latency,
            cache: self.cache.clone(),
            scale: self.scale * factor,
        }
    }

    /// The scaling factors measured in the paper (Figs. 1, 5, 7).
    pub const SCALES: [u32; 6] = [1, 2, 4, 8, 16, 32];
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self::skylake()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_multiplies_capacity_only() {
        let base = PipelineConfig::skylake();
        let big = base.scaled(8);
        assert_eq!(big.fetch_width, base.fetch_width * 8);
        assert_eq!(big.rob_size, base.rob_size * 8);
        assert_eq!(big.mispredict_penalty, base.mispredict_penalty);
        assert_eq!(big.cache, base.cache);
        assert_eq!(big.scale, 8);
    }

    #[test]
    fn scaling_composes() {
        let c = PipelineConfig::skylake().scaled(2).scaled(4);
        assert_eq!(c.scale, 8);
        assert_eq!(c.fetch_width, 32);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn zero_scale_panics() {
        let _ = PipelineConfig::skylake().scaled(0);
    }
}
