//! A compact two-level data-cache model.
//!
//! The ChampSim runs behind the paper's IPC numbers include a full memory
//! hierarchy; without one, branch misprediction cost dominates and
//! pipeline scaling is unbounded. This model gives loads realistic,
//! footprint-dependent latencies: direct-mapped L1D and L2 tag arrays with
//! allocate-on-access, and a flat DRAM latency behind them. Cache sizes do
//! *not* scale with pipeline capacity (the paper scales core resources
//! only), which produces the memory wall that bounds the Fig. 1 curves.

/// Cache geometry and latencies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// log2 of L1D capacity in bytes.
    pub l1_log2_bytes: u32,
    /// log2 of L2 capacity in bytes.
    pub l2_log2_bytes: u32,
    /// L1 hit latency (cycles).
    pub l1_latency: u32,
    /// L2 hit latency (cycles).
    pub l2_latency: u32,
    /// Memory latency (cycles).
    pub mem_latency: u32,
    /// Throughput bound: average cycles of L2 bandwidth consumed per L2
    /// access (applied as a floor on total cycles).
    pub l2_service: u32,
    /// Throughput bound: average cycles of DRAM bandwidth consumed per
    /// memory access. This fixed bandwidth is a key reason pipeline
    /// scaling saturates even under perfect branch prediction.
    pub mem_service: u32,
}

impl CacheConfig {
    /// A Skylake-like hierarchy: 32KB L1D, 1MB L2, ~120-cycle DRAM.
    #[must_use]
    pub fn skylake() -> Self {
        CacheConfig {
            l1_log2_bytes: 15,
            l2_log2_bytes: 20,
            l1_latency: 4,
            l2_latency: 14,
            mem_latency: 120,
            l2_service: 2,
            mem_service: 8,
        }
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self::skylake()
    }
}

const LINE_LOG2: u32 = 6;

/// Runtime state of the cache model.
#[derive(Clone, Debug)]
pub struct CacheModel {
    config: CacheConfig,
    l1: Vec<u64>,
    l2: Vec<u64>,
    hits_l1: u64,
    hits_l2: u64,
    misses: u64,
}

const INVALID: u64 = u64::MAX;

impl CacheModel {
    /// Creates an empty (all-invalid) cache model.
    ///
    /// # Panics
    ///
    /// Panics if capacities are below one line or above 2^30 bytes.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        assert!((LINE_LOG2..=30).contains(&config.l1_log2_bytes));
        assert!((LINE_LOG2..=30).contains(&config.l2_log2_bytes));
        CacheModel {
            l1: vec![INVALID; 1 << (config.l1_log2_bytes - LINE_LOG2)],
            l2: vec![INVALID; 1 << (config.l2_log2_bytes - LINE_LOG2)],
            hits_l1: 0,
            hits_l2: 0,
            misses: 0,
            config,
        }
    }

    /// Simulates an access to byte address `addr`, returning its latency
    /// and allocating the line in both levels.
    pub fn access(&mut self, addr: u64) -> u32 {
        let line = addr >> LINE_LOG2;
        let i1 = (line as usize) & (self.l1.len() - 1);
        let i2 = (line as usize) & (self.l2.len() - 1);
        if self.l1[i1] == line {
            self.hits_l1 += 1;
            return self.config.l1_latency;
        }
        let latency = if self.l2[i2] == line {
            self.hits_l2 += 1;
            self.config.l2_latency
        } else {
            self.misses += 1;
            self.config.mem_latency
        };
        self.l1[i1] = line;
        self.l2[i2] = line;
        latency
    }

    /// The minimum number of cycles the observed access stream needs under
    /// the configured L2/DRAM bandwidth — a floor on total execution time.
    #[must_use]
    pub fn bandwidth_floor_cycles(&self) -> u64 {
        let l2_accesses = self.hits_l2 + self.misses;
        (l2_accesses * u64::from(self.config.l2_service))
            .max(self.misses * u64::from(self.config.mem_service))
    }

    /// `(l1 hits, l2 hits, memory accesses)` counters.
    #[must_use]
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits_l1, self.hits_l2, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_misses_then_hits() {
        let mut c = CacheModel::new(CacheConfig::skylake());
        assert_eq!(c.access(0x1000), 120);
        assert_eq!(c.access(0x1000), 4);
        assert_eq!(c.access(0x1008), 4); // same 64B line
        assert_eq!(c.stats(), (2, 0, 1));
    }

    #[test]
    fn l1_conflict_falls_back_to_l2() {
        let cfg = CacheConfig::skylake();
        let l1_lines = 1u64 << (cfg.l1_log2_bytes - LINE_LOG2);
        let mut c = CacheModel::new(cfg);
        let a = 0u64;
        let b = a + (l1_lines << LINE_LOG2); // maps to same L1 set, different L2 set
        assert_eq!(c.access(a), 120);
        assert_eq!(c.access(b), 120); // evicts a from L1
        assert_eq!(c.access(a), 14); // L2 hit
    }

    #[test]
    fn working_set_within_l1_always_hits_after_warmup() {
        let mut c = CacheModel::new(CacheConfig::skylake());
        for pass in 0..2 {
            for addr in (0..16_384u64).step_by(64) {
                let lat = c.access(addr);
                if pass == 1 {
                    assert_eq!(lat, 4, "addr {addr:#x} should hit L1");
                }
            }
        }
    }

    #[test]
    fn huge_random_footprint_mostly_misses() {
        let mut c = CacheModel::new(CacheConfig::skylake());
        let mut state = 1u64;
        let mut slow = 0;
        for _ in 0..10_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let addr = state % (64 << 20); // 64MB footprint
            if c.access(addr) > 14 {
                slow += 1;
            }
        }
        assert!(slow > 9_000, "random 64MB footprint should miss: {slow}");
    }
}
