//! Property tests for the lane-vector primitives and the interleaved
//! replay scheduler.
//!
//! Every [`LaneVec`] operation is required to be the exact lane-wise lift
//! of its scalar counterpart — lane `k` of the output depends only on
//! lane `k` of the inputs and bit `k` of the mask. These tests drive
//! each primitive with seeded pseudo-random lanes and masks at every
//! chunk width the replay dispatcher instantiates (K ∈ {1, 2, 4, 8, 16})
//! for both cycle-word widths, comparing against a direct per-lane
//! scalar loop.
//!
//! The interleave tests prove the scheduler property the grid study
//! depends on: [`simulate_interleaved`] returns exactly each group's
//! [`SweepReplay::simulate_many`] result for *any* interleave
//! granularity, because cursors share no state.

use bp_pipeline::lanes::{CycleWord, LaneVec};
use bp_pipeline::{simulate_interleaved, InterleaveGroup, PipelineConfig, SweepReplay};
use bp_trace::{InstClass, Reg, RetiredInst, Trace, TraceMeta};

/// Deterministic 64-bit LCG (same multiplier the in-crate tests use).
fn lcg(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
    *state
}

/// Drives one binary LaneVec op against its scalar lift for `ROUNDS`
/// random inputs at lane width `K`.
fn check_binary_op<C: CycleWord, const K: usize>(
    seed: u64,
    op: impl Fn(LaneVec<C, K>, LaneVec<C, K>) -> LaneVec<C, K>,
    scalar: impl Fn(C, C) -> C,
    label: &str,
) {
    const ROUNDS: usize = 200;
    let mut state = seed;
    for round in 0..ROUNDS {
        let mut a = LaneVec::<C, K>::default();
        let mut b = LaneVec::<C, K>::default();
        for k in 0..K {
            a.0[k] = C::narrow(lcg(&mut state) >> 34);
            b.0[k] = C::narrow(lcg(&mut state) >> 34);
        }
        let got = op(a, b);
        for k in 0..K {
            assert_eq!(
                got.0[k],
                scalar(a.0[k], b.0[k]),
                "{label}: K={K} lane {k} round {round}"
            );
        }
    }
}

/// Runs the full primitive battery at one (C, K) instantiation.
fn check_primitives<C: CycleWord, const K: usize>(seed: u64) {
    check_binary_op::<C, K>(seed, LaneVec::max, |a, b| a.max(b), "max");
    check_binary_op::<C, K>(seed ^ 0xA5, LaneVec::sub_sat, CycleWord::sub_sat, "sub_sat");

    let mut state = seed.wrapping_add(99);
    for round in 0..200 {
        let mut a = LaneVec::<C, K>::default();
        let mut b = LaneVec::<C, K>::default();
        for k in 0..K {
            a.0[k] = C::narrow(lcg(&mut state) >> 34);
            b.0[k] = C::narrow(lcg(&mut state) >> 34);
        }
        let mask = (lcg(&mut state) & ((1u64 << K) - 1)) as u32;
        let scalar_inc = C::narrow(lcg(&mut state) >> 40);

        let splat = LaneVec::<C, K>::splat(scalar_inc);
        let added = a.add_scalar(scalar_inc);
        let mmax = a.masked_max(mask, b);
        let sel = LaneVec::select(mask, a, b);
        let gt = a.gt_mask(b);
        let wide = a.widen();
        for k in 0..K {
            let bit = mask & (1 << k) != 0;
            assert_eq!(splat.0[k], scalar_inc, "splat: K={K} lane {k}");
            assert_eq!(added.0[k], a.0[k].add(scalar_inc), "add_scalar: K={K} lane {k}");
            let expect_mmax = if bit && b.0[k] > a.0[k] { b.0[k] } else { a.0[k] };
            assert_eq!(mmax.0[k], expect_mmax, "masked_max: K={K} lane {k} round {round}");
            let expect_sel = if bit { a.0[k] } else { b.0[k] };
            assert_eq!(sel.0[k], expect_sel, "select: K={K} lane {k}");
            assert_eq!(gt & (1 << k) != 0, a.0[k] > b.0[k], "gt_mask: K={K} lane {k}");
            assert_eq!(wide.0[k], a.0[k].widen(), "widen: K={K} lane {k}");
        }

        // u64 accumulator primitives, lifted from the same lanes.
        let mut acc = wide;
        acc.add_mask_bits(mask);
        let mut acc2 = wide;
        acc2.add_masked(mask, b.widen());
        let mut sum = 0u64;
        for k in 0..K {
            let bit = mask & (1 << k) != 0;
            assert_eq!(acc.0[k], a.0[k].widen() + u64::from(bit), "add_mask_bits");
            let expect = a.0[k].widen() + if bit { b.0[k].widen() } else { 0 };
            assert_eq!(acc2.0[k], expect, "add_masked: K={K} lane {k}");
            sum += wide.0[k];
        }
        assert_eq!(wide.lane_sum(), sum, "lane_sum: K={K}");
    }
}

#[test]
fn primitives_match_scalar_lift_at_every_chunk_width() {
    check_primitives::<u32, 1>(3);
    check_primitives::<u32, 2>(5);
    check_primitives::<u32, 4>(7);
    check_primitives::<u32, 8>(11);
    check_primitives::<u32, 16>(13);
    check_primitives::<u64, 1>(17);
    check_primitives::<u64, 2>(19);
    check_primitives::<u64, 4>(23);
    check_primitives::<u64, 8>(29);
    check_primitives::<u64, 16>(31);
}

/// A mixed synthetic trace exercising loads, stores, forwarding,
/// multiplies and branches (mirrors the in-crate sweep tests).
fn mixed_trace(name: &str, seed: u64, n: u64) -> (Trace, usize) {
    let mut t = Trace::new(TraceMeta::new(name, 0));
    let mut branches = 0;
    let mut state = seed;
    for i in 0..n {
        lcg(&mut state);
        match state % 7 {
            0 => {
                t.push(RetiredInst::cond_branch(
                    i * 4,
                    state & 2 == 0,
                    0,
                    Some((state % 8) as u8),
                    None,
                ));
                branches += 1;
            }
            1 => t.push(RetiredInst::mem(
                i * 4,
                InstClass::Load,
                (state >> 8) % 4096,
                None,
                None,
                Some(Reg::new((state % 16) as u8)),
                0,
            )),
            2 => t.push(RetiredInst::mem(
                i * 4,
                InstClass::Store,
                (state >> 8) % 4096,
                Some(Reg::new((state % 16) as u8)),
                None,
                None,
                0,
            )),
            3 => t.push(RetiredInst::op(
                i * 4,
                InstClass::Mul,
                Some(Reg::new((state % 16) as u8)),
                Some(Reg::new(((state >> 4) % 16) as u8)),
                Some(Reg::new(((state >> 8) % 16) as u8)),
                0,
            )),
            _ => t.push(RetiredInst::op(
                i * 4,
                InstClass::Alu,
                Some(Reg::new((state % 16) as u8)),
                None,
                Some(Reg::new(((state >> 4) % 16) as u8)),
                0,
            )),
        }
    }
    (t, branches)
}

fn flag_streams(branches: usize, count: u64, seed: u64) -> Vec<Vec<bool>> {
    (0..count)
        .map(|i| {
            let mut state = seed + i;
            (0..branches)
                .map(|_| lcg(&mut state) % 100 < i * 7 % 60)
                .collect()
        })
        .collect()
}

#[test]
fn interleave_output_is_independent_of_granularity() {
    let cfg = PipelineConfig::skylake();
    // Deliberately unequal lengths and ragged lane counts: 11 lanes
    // (8 + 2 + 1 chunks) and 5 lanes (4 + 1), so chunks finish at
    // different times within and across groups.
    let (ta, ba) = mixed_trace("ia", 7, 12_000);
    let (tb, bb) = mixed_trace("ib", 1009, 4_500);
    let fa = flag_streams(ba, 11, 21);
    let fb = flag_streams(bb, 5, 77);
    let ra: Vec<&[bool]> = fa.iter().map(Vec::as_slice).collect();
    let rb: Vec<&[bool]> = fb.iter().map(Vec::as_slice).collect();
    let sa = SweepReplay::new(&ta, &cfg);
    let sb = SweepReplay::new(&tb, &cfg);
    let scaled = cfg.scaled(8);

    let expect = vec![sa.simulate_many(&ra, &scaled), sb.simulate_many(&rb, &scaled)];
    for granularity in [1, 7, 1000, 16_384, usize::MAX] {
        let groups = [
            InterleaveGroup::new(&sa, &ra, &scaled),
            InterleaveGroup::new(&sb, &rb, &scaled),
        ];
        assert_eq!(
            simulate_interleaved(&groups, granularity),
            expect,
            "granularity {granularity}"
        );
    }
}

#[test]
fn interleave_handles_mixed_configs_and_single_group() {
    let base = PipelineConfig::skylake();
    let (t, b) = mixed_trace("solo", 41, 6_000);
    let flags = flag_streams(b, 3, 5);
    let refs: Vec<&[bool]> = flags.iter().map(Vec::as_slice).collect();
    let sweep = SweepReplay::new(&t, &base);
    // Two groups may replay the same prepared trace at different scales.
    let c1 = base.scaled(1);
    let c2 = base.scaled(32);
    let expect = vec![
        sweep.simulate_many(&refs, &c1),
        sweep.simulate_many(&refs, &c2),
    ];
    let groups = [
        InterleaveGroup::new(&sweep, &refs, &c1),
        InterleaveGroup::new(&sweep, &refs, &c2),
    ];
    assert_eq!(simulate_interleaved(&groups, 13), expect);
    // A single group degenerates to plain simulate_many.
    let solo = [InterleaveGroup::new(&sweep, &refs, &c1)];
    assert_eq!(simulate_interleaved(&solo, 3)[0], expect[0]);
}

#[test]
fn ragged_lane_counts_replay_every_stream() {
    // Every lane count from 1 to 36 must produce exactly one result per
    // stream, each matching its solo scalar replay — no stream may be
    // dropped or doubled by the chunk decomposition.
    let cfg = PipelineConfig::skylake();
    let (t, b) = mixed_trace("ragged", 3, 3_000);
    let sweep = SweepReplay::new(&t, &cfg);
    let all = flag_streams(b, 36, 9);
    let solos: Vec<_> = all
        .iter()
        .map(|f| sweep.simulate_many(&[f.as_slice()], &cfg)[0])
        .collect();
    for n in 1..=36 {
        let refs: Vec<&[bool]> = all[..n].iter().map(Vec::as_slice).collect();
        let many = sweep.simulate_many(&refs, &cfg);
        assert_eq!(many.len(), n);
        for (k, got) in many.iter().enumerate() {
            assert_eq!(*got, solos[k], "n={n} lane {k}");
        }
    }
}
