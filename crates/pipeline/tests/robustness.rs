//! Robustness of the streaming replay path: a BPTR v3 stream truncated
//! *mid-block* — after earlier blocks already decoded and fed the
//! consumer — must surface a structured [`ReadTraceError`] from
//! [`SweepReplay::prepare`] and [`sweep_flags_stream`], never a panic
//! and never a silently short result.

use std::io::Cursor;

use bp_pipeline::{PipelineConfig, SweepReplay};
use bp_predictors::{sweep_flags_stream, DirectionPredictor, PredictorSpec};
use bp_trace::{BptrReader, ReadTraceError, RetiredInst, Trace, TraceMeta, TraceReader, BLOCK_RECORDS};

/// A trace spanning more than one v3 block, so a tail truncation still
/// leaves at least one fully decodable block in front of the tear.
fn multi_block_trace() -> Trace {
    let mut t = Trace::new(TraceMeta::new("robustness", 0));
    for i in 0..(BLOCK_RECORDS as u64 + BLOCK_RECORDS as u64 / 2) {
        let taken = (i * i) % 3 == 0;
        t.push(RetiredInst::cond_branch(0x40_0000 + (i % 97) * 4, taken, 0x80_0000, Some(1), None));
    }
    t
}

/// Serialized bytes of the trace, cut so the header and the first block
/// survive but the stream tears inside a later block.
fn torn_bytes() -> Vec<u8> {
    let mut bytes = Vec::new();
    multi_block_trace().write_to(&mut bytes).expect("serialize");
    bytes.truncate(bytes.len() * 9 / 10);
    bytes
}

#[test]
fn torn_stream_decodes_leading_blocks_then_errors() {
    // Precondition for the tests below: the tear is genuinely
    // *mid-stream* — the reader hands out at least one chunk before
    // hitting it, so consumers are already holding partial state.
    let bytes = torn_bytes();
    let mut reader = BptrReader::new(Cursor::new(bytes.as_slice())).expect("header survives");
    let mut chunks = 0usize;
    let err = loop {
        match reader.next_chunk() {
            Ok(Some(_)) => chunks += 1,
            Ok(None) => panic!("torn stream must not end cleanly"),
            Err(e) => break e,
        }
    };
    assert!(chunks >= 1, "tear must land past the first block");
    assert!(
        matches!(err, ReadTraceError::Io(_) | ReadTraceError::ChecksumMismatch { .. }),
        "unexpected {err:?}"
    );
}

#[test]
fn sweep_replay_prepare_surfaces_mid_stream_truncation() {
    let bytes = torn_bytes();
    let config = PipelineConfig::skylake();
    let reader = BptrReader::new(Cursor::new(bytes.as_slice())).expect("header survives");
    let err = match SweepReplay::prepare(reader, &config) {
        Ok(_) => panic!("torn stream must not prepare"),
        Err(e) => e,
    };
    assert!(
        matches!(err, ReadTraceError::Io(_) | ReadTraceError::ChecksumMismatch { .. }),
        "unexpected {err:?}"
    );

    // The same records in full still prepare fine — the failure above is
    // the truncation, not the replay machinery.
    let full = multi_block_trace();
    let replay = SweepReplay::new(&full, &config);
    assert_eq!(replay.cond_branch_count(), full.len());
}

#[test]
fn sweep_flags_stream_surfaces_mid_stream_truncation() {
    let bytes = torn_bytes();
    let mut predictors: Vec<Box<dyn DirectionPredictor>> = ["gshare", "bimodal"]
        .iter()
        .map(|label| PredictorSpec::parse(label).expect("known predictor").build())
        .collect();
    let reader = BptrReader::new(Cursor::new(bytes.as_slice())).expect("header survives");
    let err = sweep_flags_stream(&mut predictors, reader).expect_err("torn stream must not sweep");
    assert!(
        matches!(err, ReadTraceError::Io(_) | ReadTraceError::ChecksumMismatch { .. }),
        "unexpected {err:?}"
    );
}
