//! Property battery for `faultpoint::parse`: every well-formed spec
//! round-trips through `Display`, every malformed spec yields a
//! structured error, and no input — well-formed, malformed, or mutated —
//! ever panics the parser.
//!
//! Randomness is a hand-rolled LCG seeded per test, so failures replay
//! deterministically (no external property-testing crate needed).

use bp_metrics::faultpoint::{parse, Action, FaultSpec, When};

/// Deterministic 64-bit LCG (Knuth MMIX constants).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 11
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn pick<'a, T>(&mut self, options: &'a [T]) -> &'a T {
        &options[self.below(options.len() as u64) as usize]
    }
}

/// A random site name from the charset real sites use.
fn arb_site(rng: &mut Lcg) -> String {
    const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789._-";
    let len = 1 + rng.below(20) as usize;
    (0..len).map(|_| *rng.pick(CHARS) as char).collect()
}

fn arb_when(rng: &mut Lcg) -> When {
    match rng.below(5) {
        0 => When::Always,
        1 => When::Nth(1 + rng.below(1_000)),
        2 => {
            let from = 1 + rng.below(500);
            When::Range { from, to: Some(from + rng.below(500)) }
        }
        3 => When::Range { from: 1 + rng.below(500), to: None },
        _ => When::Prob { percent: 1 + rng.below(100) as u8 },
    }
}

fn arb_spec(rng: &mut Lcg) -> FaultSpec {
    FaultSpec {
        site: arb_site(rng),
        action: *rng.pick(&[Action::Fail, Action::Panic]),
        when: arb_when(rng),
    }
}

#[test]
fn well_formed_specs_round_trip_through_display_and_parse() {
    let mut rng = Lcg(0xfau64 << 32 | 0x17);
    for case in 0..500 {
        let specs: Vec<FaultSpec> = (0..1 + rng.below(4)).map(|_| arb_spec(&mut rng)).collect();
        let rendered: Vec<String> = specs.iter().map(ToString::to_string).collect();
        let joined = rendered.join(",");
        let parsed = parse(&joined)
            .unwrap_or_else(|e| panic!("case {case}: `{joined}` must parse: {e}"));
        assert_eq!(parsed, specs, "case {case}: `{joined}` must round-trip");
    }
}

#[test]
fn malformed_specs_yield_structured_errors_not_panics() {
    // Every family of malformation the grammar rules out: the error must
    // be an `Err` naming the offending entry, never a panic, and the
    // whole value must be rejected even when other entries are fine.
    let malformed = [
        "siteonly",                // missing :action
        ":fail",                   // empty site
        "s:flail",                 // unknown action
        "s:fail@0",                // nth must be >= 1
        "s:fail@",                 // empty schedule
        "s:fail@x",                // non-numeric schedule
        "s:fail@-3",               // negative
        "s:fail@18446744073709551616", // > u64::MAX
        "s:fail@0..5",             // range start must be >= 1
        "s:fail@5..3",             // inverted range
        "s:fail@..",               // empty range start
        "s:fail@..7",              // still empty range start
        "s:fail@2..x",             // non-numeric range end
        "s:fail@0%",               // percent must be >= 1
        "s:fail@101%",             // percent must be <= 100
        "s:fail@%",                // empty percent
        "s:panic@3.5",             // non-integer schedule
    ];
    for bad in malformed {
        let err = parse(bad).expect_err(bad);
        assert!(
            err.contains(bad.trim()),
            "error for `{bad}` must name the entry, got: {err}"
        );
        let mixed = format!("good.site:fail,{bad}");
        assert!(
            parse(&mixed).is_err(),
            "`{mixed}`: one bad entry must reject the whole value"
        );
    }
}

#[test]
fn mutated_specs_never_panic_and_accepted_ones_still_round_trip() {
    // Take a valid rendering, smash one byte with a hostile character,
    // and feed it back: the parser must return *something* (Ok or Err)
    // without panicking, and anything it accepts must itself round-trip.
    const HOSTILE: &[u8] = b":@%,.!$ 09x-";
    let mut rng = Lcg(0xdead_bee5);
    for case in 0..2_000 {
        let mut bytes = arb_spec(&mut rng).to_string().into_bytes();
        let at = rng.below(bytes.len() as u64) as usize;
        bytes[at] = *rng.pick(HOSTILE);
        let mutated = String::from_utf8(bytes).expect("ascii stays ascii");
        let outcome = std::panic::catch_unwind(|| parse(&mutated));
        let parsed = outcome
            .unwrap_or_else(|_| panic!("case {case}: `{mutated}` panicked the parser"));
        if let Ok(specs) = parsed {
            let rendered: Vec<String> = specs.iter().map(ToString::to_string).collect();
            let reparsed = parse(&rendered.join(","))
                .unwrap_or_else(|e| panic!("case {case}: `{mutated}` reparse failed: {e}"));
            assert_eq!(reparsed, specs, "case {case}: `{mutated}` accepted but unstable");
        }
    }
}

#[test]
fn whitespace_and_empty_entries_are_tolerated() {
    let specs = parse(" a.b:fail@3 ,, c:panic@40% ,").expect("whitespace-padded value");
    assert_eq!(specs.len(), 2);
    assert_eq!(specs[0].site, "a.b");
    assert_eq!(specs[0].when, When::Nth(3));
    assert_eq!(specs[1].action, Action::Panic);
    assert_eq!(specs[1].when, When::Prob { percent: 40 });
    assert_eq!(parse("").expect("empty value"), Vec::new());
    assert_eq!(parse(" , ,").expect("only separators"), Vec::new());
}
