//! Deterministic, environment-driven fault injection.
//!
//! Long batch runs die in ways unit tests never exercise: a worker
//! panics three hours in, a trace write is cut short by `kill -9`, one
//! child of the `all` runner segfaults. This module lets tests and CI
//! trigger those failures **on purpose and reproducibly**, so every
//! degradation path in the suite is executable on demand.
//!
//! # Activation
//!
//! Faults are described by the `BRANCH_LAB_FAULTS` environment variable,
//! read once per process. The syntax is a comma-separated list of
//! `site:action[@n]` entries:
//!
//! ```text
//! BRANCH_LAB_FAULTS=trace_store.save:fail@2,engine.task:panic@5
//! ```
//!
//! * `site` — a dot-separated name compiled into the code under test
//!   (e.g. `trace_store.save`, `engine.task`, `all.child.fig3`).
//! * `action` — `fail` (the site reports an injected failure) or
//!   `panic` (the site panics with an `"injected fault"` payload).
//! * `@n` — fire only on the *n*-th arrival at that site (1-based).
//!   Without `@n` the fault fires on **every** arrival.
//!
//! # Determinism
//!
//! There is no randomness: each site keeps a per-process hit counter,
//! and a spec fires as a pure function of that count. Re-running the
//! same binary with the same environment and thread count replays the
//! same injections. (Sites reached from worker threads should be hit a
//! deterministic number of times per run — all current sites are.)
//!
//! # Cost
//!
//! When `BRANCH_LAB_FAULTS` is unset (every production run), a fault
//! check is one relaxed atomic load and a predictable branch — no
//! locking, no allocation, no string work. Sites only pay for bookkeeping
//! when a plan is installed.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// What an armed fault does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// The instrumented site should behave as if the operation failed.
    Fail,
    /// The instrumented site panics (exercises panic-isolation paths).
    Panic,
}

/// One parsed `site:action[@n]` entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// Site name the spec arms.
    pub site: String,
    /// What happens when it fires.
    pub action: Action,
    /// `Some(n)`: fire only on the n-th hit (1-based). `None`: every hit.
    pub at_hit: Option<u64>,
}

struct Plan {
    specs: Vec<FaultSpec>,
    hits: Mutex<HashMap<String, u64>>,
}

/// Fast-path switch: false until a non-empty plan is installed.
static ACTIVE: AtomicBool = AtomicBool::new(false);
static PLAN: OnceLock<Mutex<Option<Plan>>> = OnceLock::new();

fn plan_cell() -> &'static Mutex<Option<Plan>> {
    PLAN.get_or_init(|| {
        let plan = std::env::var("BRANCH_LAB_FAULTS")
            .ok()
            .filter(|s| !s.trim().is_empty())
            .and_then(|raw| match parse(&raw) {
                Ok(specs) => Some(Plan { specs, hits: Mutex::new(HashMap::new()) }),
                Err(err) => {
                    eprintln!("branch-lab: ignoring BRANCH_LAB_FAULTS ({err})");
                    None
                }
            });
        if plan.is_some() {
            ACTIVE.store(true, Ordering::Release);
        }
        Mutex::new(plan)
    })
}

/// Parses a `BRANCH_LAB_FAULTS` value into fault specs.
///
/// # Errors
///
/// Returns a human-readable message for a malformed entry; the whole
/// value is rejected so a typo cannot half-arm a test.
pub fn parse(raw: &str) -> Result<Vec<FaultSpec>, String> {
    let mut specs = Vec::new();
    for entry in raw.split(',').map(str::trim).filter(|e| !e.is_empty()) {
        let (site, rest) = entry
            .rsplit_once(':')
            .ok_or_else(|| format!("`{entry}` is missing `:action`"))?;
        let (action_str, at_hit) = match rest.split_once('@') {
            Some((a, n)) => {
                let n: u64 = n
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("`{entry}`: `@{n}` must be a positive integer"))?;
                (a, Some(n))
            }
            None => (rest, None),
        };
        let action = match action_str {
            "fail" => Action::Fail,
            "panic" => Action::Panic,
            other => return Err(format!("`{entry}`: unknown action `{other}` (use fail|panic)")),
        };
        if site.is_empty() {
            return Err(format!("`{entry}` has an empty site name"));
        }
        specs.push(FaultSpec { site: site.to_string(), action, at_hit });
    }
    Ok(specs)
}

/// True when a fault plan is installed (i.e. `BRANCH_LAB_FAULTS` parsed
/// to at least one spec, or a test installed a plan).
#[must_use]
pub fn active() -> bool {
    if !ACTIVE.load(Ordering::Acquire) {
        // Force the one-time env read so `active()` is accurate even
        // before any site was hit.
        let _ = plan_cell();
    }
    ACTIVE.load(Ordering::Acquire)
}

/// Registers one arrival at `site` and returns the action of a fault
/// that fires now, if any. The no-plan fast path is a single atomic
/// load.
#[must_use]
pub fn hit(site: &str) -> Option<Action> {
    if !ACTIVE.load(Ordering::Acquire) && PLAN.get().is_some() {
        return None; // plan resolved to "no faults": steady-state fast path
    }
    let cell = plan_cell();
    let guard = cell.lock().unwrap_or_else(PoisonError::into_inner);
    let plan = guard.as_ref()?;
    let mut hits = plan.hits.lock().unwrap_or_else(PoisonError::into_inner);
    let count = hits.entry(site.to_string()).or_insert(0);
    *count += 1;
    let now = *count;
    drop(hits);
    plan.specs
        .iter()
        .find(|s| s.site == site && s.at_hit.is_none_or(|n| n == now))
        .map(|s| s.action)
}

/// True when a `fail` fault fires at `site` on this arrival.
///
/// Instrumented code treats `true` as "the operation failed" and takes
/// its error path.
#[must_use]
pub fn should_fail(site: &str) -> bool {
    hit(site) == Some(Action::Fail)
}

/// Panics when a `panic` fault fires at `site` on this arrival.
///
/// # Panics
///
/// Panics with an `injected fault` payload when armed — that is its job.
pub fn panic_point(site: &str) {
    if hit(site) == Some(Action::Panic) {
        panic!("injected fault: panic at {site}");
    }
}

/// Installs (or clears, with `None`) a fault plan programmatically,
/// bypassing the environment. Returns the previous plan's specs.
///
/// Intended for tests: fault state is process-global, so tests that use
/// this must serialize themselves (e.g. behind a shared `Mutex`).
///
/// # Panics
///
/// Panics if `spec` does not parse — a test asking for a malformed plan
/// is a bug in the test.
pub fn install_for_tests(spec: Option<&str>) -> Vec<FaultSpec> {
    let cell = plan_cell();
    let mut guard = cell.lock().unwrap_or_else(PoisonError::into_inner);
    let old = guard.take().map(|p| p.specs).unwrap_or_default();
    *guard = spec.map(|raw| {
        let specs = parse(raw).expect("test fault spec must parse");
        Plan { specs, hits: Mutex::new(HashMap::new()) }
    });
    ACTIVE.store(guard.is_some(), Ordering::Release);
    old
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Global-state tests must not interleave.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn parse_accepts_the_documented_syntax() {
        let specs = parse("trace_store.save:fail@2, engine.task:panic@5,all.child.fig3:fail")
            .expect("parses");
        assert_eq!(
            specs,
            vec![
                FaultSpec { site: "trace_store.save".into(), action: Action::Fail, at_hit: Some(2) },
                FaultSpec { site: "engine.task".into(), action: Action::Panic, at_hit: Some(5) },
                FaultSpec { site: "all.child.fig3".into(), action: Action::Fail, at_hit: None },
            ]
        );
    }

    #[test]
    fn parse_rejects_malformed_entries() {
        assert!(parse("noaction").is_err());
        assert!(parse("site:explode").is_err());
        assert!(parse("site:fail@0").is_err());
        assert!(parse("site:fail@x").is_err());
        assert!(parse(":fail").is_err());
    }

    #[test]
    fn counted_faults_fire_exactly_on_the_nth_hit() {
        let _g = lock();
        install_for_tests(Some("s.a:fail@3"));
        assert_eq!(hit("s.a"), None);
        assert_eq!(hit("s.a"), None);
        assert_eq!(hit("s.a"), Some(Action::Fail));
        assert_eq!(hit("s.a"), None, "fires only on the exact hit");
        assert_eq!(hit("s.other"), None, "unarmed sites never fire");
        install_for_tests(None);
    }

    #[test]
    fn uncounted_faults_fire_every_hit_and_sites_are_independent() {
        let _g = lock();
        install_for_tests(Some("s.b:panic"));
        for _ in 0..3 {
            assert_eq!(hit("s.b"), Some(Action::Panic));
        }
        assert_eq!(hit("s.c"), None);
        install_for_tests(None);
        assert_eq!(hit("s.b"), None, "cleared plan disarms everything");
    }

    #[test]
    fn panic_point_panics_with_injected_payload() {
        let _g = lock();
        install_for_tests(Some("s.d:panic@1"));
        let err = std::panic::catch_unwind(|| panic_point("s.d")).expect_err("must panic");
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("injected fault"), "{msg}");
        panic_point("s.d"); // second hit: disarmed
        install_for_tests(None);
    }
}
