//! Deterministic, environment-driven fault injection.
//!
//! Long batch runs die in ways unit tests never exercise: a worker
//! panics three hours in, a trace write is cut short by `kill -9`, one
//! child of the `all` runner segfaults. This module lets tests and CI
//! trigger those failures **on purpose and reproducibly**, so every
//! degradation path in the suite is executable on demand.
//!
//! # Activation
//!
//! Faults are described by the `BRANCH_LAB_FAULTS` environment variable,
//! read once per process. The syntax is a comma-separated list of
//! `site:action[@schedule]` entries:
//!
//! ```text
//! BRANCH_LAB_FAULTS=trace_store.save:fail@2,engine.task:panic@5..8,all.child.fig3:fail@25%
//! ```
//!
//! * `site` — a dot-separated name compiled into the code under test
//!   (e.g. `trace_store.save`, `engine.task`, `all.child.fig3`).
//! * `action` — `fail` (the site reports an injected failure) or
//!   `panic` (the site panics with an `"injected fault"` payload).
//! * `@schedule` — when the fault fires, as a function of the site's
//!   1-based per-process hit counter:
//!   * *(absent)* — every arrival;
//!   * `@n` — only the *n*-th arrival;
//!   * `@n..m` — arrivals *n* through *m* inclusive;
//!   * `@n..` — every arrival from *n* onward;
//!   * `@p%` — each arrival independently with probability *p*/100,
//!     decided by a hash of (`BRANCH_LAB_CHAOS_SEED`, site, hit number).
//!
//! # Determinism
//!
//! Each site keeps a per-process hit counter, and a spec fires as a pure
//! function of that count (probability schedules additionally mix in the
//! chaos seed — same seed, same firing hit numbers). Re-running the same
//! binary with the same environment and thread count replays the same
//! injections. (Sites reached from worker threads should be hit a
//! deterministic number of times per run — all current sites are; for
//! probability schedules the *set* of firing arrival indices is
//! deterministic even if thread scheduling reorders which task draws
//! them.)
//!
//! # Cost
//!
//! When `BRANCH_LAB_FAULTS` is unset (every production run), a fault
//! check is one relaxed atomic load and a predictable branch — no
//! locking, no allocation, no string work. Sites only pay for bookkeeping
//! when a plan is installed.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// What an armed fault does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// The instrumented site should behave as if the operation failed.
    Fail,
    /// The instrumented site panics (exercises panic-isolation paths).
    Panic,
}

/// When a spec fires, as a function of the site's 1-based hit counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum When {
    /// Every arrival (no `@` suffix).
    Always,
    /// Only the n-th arrival (`@n`).
    Nth(u64),
    /// Arrivals `from..=to`; `to == None` means "from `from` onward"
    /// (`@n..m` / `@n..`).
    Range {
        /// First firing arrival (1-based, inclusive).
        from: u64,
        /// Last firing arrival (inclusive), or open-ended.
        to: Option<u64>,
    },
    /// Each arrival independently with probability `percent`/100, decided
    /// by hashing (chaos seed, site, hit number) — deterministic per seed
    /// (`@p%`).
    Prob {
        /// Firing probability in percent, 1..=100.
        percent: u8,
    },
}

impl When {
    /// Whether a spec with this schedule fires on arrival `hit` (1-based)
    /// at `site` under `seed`.
    #[must_use]
    pub fn fires(&self, site: &str, hit: u64, seed: u64) -> bool {
        match *self {
            When::Always => true,
            When::Nth(n) => hit == n,
            When::Range { from, to } => hit >= from && to.is_none_or(|t| hit <= t),
            When::Prob { percent } => {
                let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
                let mut mix = |b: u8| {
                    h ^= u64::from(b);
                    h = h.wrapping_mul(0x0000_0100_0000_01b3);
                };
                for b in site.bytes() {
                    mix(b);
                }
                for b in hit.to_le_bytes() {
                    mix(b);
                }
                (h % 100) < u64::from(percent)
            }
        }
    }
}

/// One parsed `site:action[@schedule]` entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// Site name the spec arms.
    pub site: String,
    /// What happens when it fires.
    pub action: Action,
    /// Which arrivals it fires on.
    pub when: When,
}

impl fmt::Display for FaultSpec {
    /// Renders the spec in the exact syntax [`parse`] accepts, so
    /// `parse(spec.to_string())` round-trips (pinned by the faultpoint
    /// property tests).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let action = match self.action {
            Action::Fail => "fail",
            Action::Panic => "panic",
        };
        write!(f, "{}:{action}", self.site)?;
        match self.when {
            When::Always => Ok(()),
            When::Nth(n) => write!(f, "@{n}"),
            When::Range { from, to: Some(to) } => write!(f, "@{from}..{to}"),
            When::Range { from, to: None } => write!(f, "@{from}.."),
            When::Prob { percent } => write!(f, "@{percent}%"),
        }
    }
}

struct Plan {
    specs: Vec<FaultSpec>,
    seed: u64,
    hits: Mutex<HashMap<String, u64>>,
}

/// Fast-path switch: false until a non-empty plan is installed.
static ACTIVE: AtomicBool = AtomicBool::new(false);
static PLAN: OnceLock<Mutex<Option<Plan>>> = OnceLock::new();

/// The chaos seed from the environment (`BRANCH_LAB_CHAOS_SEED`, default
/// 0) — mixed into probability schedules and retry-backoff jitter so a
/// whole chaos run replays from one number.
#[must_use]
pub fn env_seed() -> u64 {
    std::env::var("BRANCH_LAB_CHAOS_SEED")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(0)
}

fn plan_cell() -> &'static Mutex<Option<Plan>> {
    PLAN.get_or_init(|| {
        let plan = std::env::var("BRANCH_LAB_FAULTS")
            .ok()
            .filter(|s| !s.trim().is_empty())
            .and_then(|raw| match parse(&raw) {
                Ok(specs) => Some(Plan {
                    specs,
                    seed: env_seed(),
                    hits: Mutex::new(HashMap::new()),
                }),
                Err(err) => {
                    eprintln!("branch-lab: ignoring BRANCH_LAB_FAULTS ({err})");
                    None
                }
            });
        if plan.is_some() {
            ACTIVE.store(true, Ordering::Release);
        }
        Mutex::new(plan)
    })
}

/// Parses the schedule part after `@` (already split off).
fn parse_when(entry: &str, sched: &str) -> Result<When, String> {
    if let Some(p) = sched.strip_suffix('%') {
        let percent: u8 = p
            .parse()
            .ok()
            .filter(|&p| (1..=100).contains(&p))
            .ok_or_else(|| format!("`{entry}`: `@{sched}` must be 1..=100 percent"))?;
        return Ok(When::Prob { percent });
    }
    if let Some((from, to)) = sched.split_once("..") {
        let from: u64 = from
            .parse()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("`{entry}`: range start in `@{sched}` must be a positive integer"))?;
        let to = if to.is_empty() {
            None
        } else {
            let t: u64 = to
                .parse()
                .ok()
                .filter(|&t| t >= from)
                .ok_or_else(|| {
                    format!("`{entry}`: range end in `@{sched}` must be an integer >= {from}")
                })?;
            Some(t)
        };
        return Ok(When::Range { from, to });
    }
    let n: u64 = sched
        .parse()
        .ok()
        .filter(|&n| n >= 1)
        .ok_or_else(|| format!("`{entry}`: `@{sched}` must be a positive integer"))?;
    Ok(When::Nth(n))
}

/// Parses a `BRANCH_LAB_FAULTS` value into fault specs.
///
/// # Errors
///
/// Returns a human-readable message for a malformed entry; the whole
/// value is rejected so a typo cannot half-arm a test.
pub fn parse(raw: &str) -> Result<Vec<FaultSpec>, String> {
    let mut specs = Vec::new();
    for entry in raw.split(',').map(str::trim).filter(|e| !e.is_empty()) {
        let (site, rest) = entry
            .rsplit_once(':')
            .ok_or_else(|| format!("`{entry}` is missing `:action`"))?;
        let (action_str, when) = match rest.split_once('@') {
            Some((a, sched)) => (a, parse_when(entry, sched)?),
            None => (rest, When::Always),
        };
        let action = match action_str {
            "fail" => Action::Fail,
            "panic" => Action::Panic,
            other => return Err(format!("`{entry}`: unknown action `{other}` (use fail|panic)")),
        };
        if site.is_empty() {
            return Err(format!("`{entry}` has an empty site name"));
        }
        specs.push(FaultSpec { site: site.to_string(), action, when });
    }
    Ok(specs)
}

/// True when a fault plan is installed (i.e. `BRANCH_LAB_FAULTS` parsed
/// to at least one spec, or a test installed a plan).
#[must_use]
pub fn active() -> bool {
    if !ACTIVE.load(Ordering::Acquire) {
        // Force the one-time env read so `active()` is accurate even
        // before any site was hit.
        let _ = plan_cell();
    }
    ACTIVE.load(Ordering::Acquire)
}

/// Registers one arrival at `site` and returns the action of a fault
/// that fires now, if any. The no-plan fast path is a single atomic
/// load.
#[must_use]
pub fn hit(site: &str) -> Option<Action> {
    if !ACTIVE.load(Ordering::Acquire) && PLAN.get().is_some() {
        return None; // plan resolved to "no faults": steady-state fast path
    }
    let cell = plan_cell();
    let guard = cell.lock().unwrap_or_else(PoisonError::into_inner);
    let plan = guard.as_ref()?;
    let mut hits = plan.hits.lock().unwrap_or_else(PoisonError::into_inner);
    let count = hits.entry(site.to_string()).or_insert(0);
    *count += 1;
    let now = *count;
    drop(hits);
    plan.specs
        .iter()
        .find(|s| s.site == site && s.when.fires(site, now, plan.seed))
        .map(|s| s.action)
}

/// True when a `fail` fault fires at `site` on this arrival.
///
/// Instrumented code treats `true` as "the operation failed" and takes
/// its error path.
#[must_use]
pub fn should_fail(site: &str) -> bool {
    hit(site) == Some(Action::Fail)
}

/// Panics when a `panic` fault fires at `site` on this arrival.
///
/// # Panics
///
/// Panics with an `injected fault` payload when armed — that is its job.
pub fn panic_point(site: &str) {
    if hit(site) == Some(Action::Panic) {
        panic!("injected fault: panic at {site}");
    }
}

/// Installs (or clears, with `None`) a fault plan programmatically,
/// bypassing the environment; the chaos seed comes from the environment
/// (see [`install_for_tests_with_seed`] for an explicit one). Returns the
/// previous plan's specs.
///
/// Intended for tests: fault state is process-global, so tests that use
/// this must serialize themselves (e.g. behind a shared `Mutex`).
///
/// # Panics
///
/// Panics if `spec` does not parse — a test asking for a malformed plan
/// is a bug in the test.
pub fn install_for_tests(spec: Option<&str>) -> Vec<FaultSpec> {
    install_for_tests_with_seed(spec, env_seed())
}

/// [`install_for_tests`] with an explicit chaos seed for probability
/// schedules, so seeded-schedule tests are environment-independent.
///
/// # Panics
///
/// Panics if `spec` does not parse.
pub fn install_for_tests_with_seed(spec: Option<&str>, seed: u64) -> Vec<FaultSpec> {
    let cell = plan_cell();
    let mut guard = cell.lock().unwrap_or_else(PoisonError::into_inner);
    let old = guard.take().map(|p| p.specs).unwrap_or_default();
    *guard = spec.map(|raw| {
        let specs = parse(raw).expect("test fault spec must parse");
        Plan { specs, seed, hits: Mutex::new(HashMap::new()) }
    });
    ACTIVE.store(guard.is_some(), Ordering::Release);
    old
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Global-state tests must not interleave.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn parse_accepts_the_documented_syntax() {
        let specs = parse(
            "trace_store.save:fail@2, engine.task:panic@5,all.child.fig3:fail,\
             s.range:fail@3..7,s.open:panic@9..,s.prob:fail@25%",
        )
        .expect("parses");
        assert_eq!(
            specs,
            vec![
                FaultSpec {
                    site: "trace_store.save".into(),
                    action: Action::Fail,
                    when: When::Nth(2)
                },
                FaultSpec { site: "engine.task".into(), action: Action::Panic, when: When::Nth(5) },
                FaultSpec { site: "all.child.fig3".into(), action: Action::Fail, when: When::Always },
                FaultSpec {
                    site: "s.range".into(),
                    action: Action::Fail,
                    when: When::Range { from: 3, to: Some(7) }
                },
                FaultSpec {
                    site: "s.open".into(),
                    action: Action::Panic,
                    when: When::Range { from: 9, to: None }
                },
                FaultSpec { site: "s.prob".into(), action: Action::Fail, when: When::Prob { percent: 25 } },
            ]
        );
    }

    #[test]
    fn parse_rejects_malformed_entries() {
        assert!(parse("noaction").is_err());
        assert!(parse("site:explode").is_err());
        assert!(parse("site:fail@0").is_err());
        assert!(parse("site:fail@x").is_err());
        assert!(parse(":fail").is_err());
        assert!(parse("site:fail@0..5").is_err());
        assert!(parse("site:fail@5..3").is_err());
        assert!(parse("site:fail@..5").is_err());
        assert!(parse("site:fail@0%").is_err());
        assert!(parse("site:fail@101%").is_err());
        assert!(parse("site:fail@x%").is_err());
    }

    #[test]
    fn display_round_trips_through_parse() {
        for raw in ["a.b:fail", "a.b:panic@7", "a.b:fail@2..9", "a.b:panic@4..", "a.b:fail@60%"] {
            let specs = parse(raw).expect("parses");
            assert_eq!(specs.len(), 1);
            assert_eq!(specs[0].to_string(), raw);
            assert_eq!(parse(&specs[0].to_string()).expect("round-trip"), specs);
        }
    }

    #[test]
    fn counted_faults_fire_exactly_on_the_nth_hit() {
        let _g = lock();
        install_for_tests(Some("s.a:fail@3"));
        assert_eq!(hit("s.a"), None);
        assert_eq!(hit("s.a"), None);
        assert_eq!(hit("s.a"), Some(Action::Fail));
        assert_eq!(hit("s.a"), None, "fires only on the exact hit");
        assert_eq!(hit("s.other"), None, "unarmed sites never fire");
        install_for_tests(None);
    }

    #[test]
    fn range_faults_fire_across_their_window() {
        let _g = lock();
        install_for_tests(Some("s.r:fail@2..3"));
        assert_eq!(hit("s.r"), None);
        assert_eq!(hit("s.r"), Some(Action::Fail));
        assert_eq!(hit("s.r"), Some(Action::Fail));
        assert_eq!(hit("s.r"), None, "past the window");
        install_for_tests(Some("s.o:fail@3.."));
        assert_eq!(hit("s.o"), None);
        assert_eq!(hit("s.o"), None);
        for _ in 0..5 {
            assert_eq!(hit("s.o"), Some(Action::Fail), "open-ended tail");
        }
        install_for_tests(None);
    }

    #[test]
    fn probability_faults_are_seed_deterministic() {
        let _g = lock();
        let draw = |seed: u64| -> Vec<bool> {
            install_for_tests_with_seed(Some("s.p:fail@40%"), seed);
            (0..64).map(|_| hit("s.p").is_some()).collect()
        };
        let a = draw(7);
        let b = draw(7);
        assert_eq!(a, b, "same seed replays the same schedule");
        let c = draw(8);
        assert_ne!(a, c, "different seed draws a different schedule");
        let fired = a.iter().filter(|&&f| f).count();
        assert!((10..=40).contains(&fired), "~40% of 64 arrivals, got {fired}");
        install_for_tests(None);
    }

    #[test]
    fn uncounted_faults_fire_every_hit_and_sites_are_independent() {
        let _g = lock();
        install_for_tests(Some("s.b:panic"));
        for _ in 0..3 {
            assert_eq!(hit("s.b"), Some(Action::Panic));
        }
        assert_eq!(hit("s.c"), None);
        install_for_tests(None);
        assert_eq!(hit("s.b"), None, "cleared plan disarms everything");
    }

    #[test]
    fn panic_point_panics_with_injected_payload() {
        let _g = lock();
        install_for_tests(Some("s.d:panic@1"));
        let err = std::panic::catch_unwind(|| panic_point("s.d")).expect_err("must panic");
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("injected fault"), "{msg}");
        panic_point("s.d"); // second hit: disarmed
        install_for_tests(None);
    }
}
