//! Per-run manifests: a deterministic JSON summary of one experiment
//! run (identity, configuration, thread count, stage wall times, and the
//! full counter table).
//!
//! Two schemas exist:
//!
//! * `bp-metrics/run-v1` — one process's run, written by [`RunGuard`]
//!   as `<sink>/<run>.json`.
//! * `bp-metrics/merged-v1` — the `all` binary's merge of its children:
//!   `{"runs": [<run manifests…>], "schema": "bp-metrics/merged-v1"}`.
//!
//! Serialization goes through [`crate::json::Value::to_json`], so output
//! is canonical: sorted keys, two-space indent, stable escapes. The only
//! fields that legitimately vary between identical runs are wall-clock
//! derived (`timers_ns`, `wall_time_ns`) plus the `threads` count;
//! [`normalize`] strips exactly those, which is what the
//! `BRANCH_LAB_THREADS=1` vs `=8` manifest-equality test compares.

use std::collections::BTreeMap;
use std::time::Instant;

use crate::json::{self, JsonError, Value};

/// Keys that may differ between two otherwise-identical runs.
const VOLATILE_KEYS: [&str; 3] = ["threads", "timers_ns", "wall_time_ns"];

/// Schema tag for a single-run manifest.
pub const RUN_SCHEMA: &str = "bp-metrics/run-v1";
/// Schema tag for a merged multi-run manifest.
pub const MERGED_SCHEMA: &str = "bp-metrics/merged-v1";

/// A captured summary of one run.
#[derive(Clone, Debug, PartialEq)]
pub struct Manifest {
    /// Run name (normally the experiment binary name).
    pub run: String,
    /// Free-form configuration: workload suite, trace length, predictor
    /// config, input counts — anything that identifies the run.
    pub info: BTreeMap<String, String>,
    /// Engine worker-thread count at capture time.
    pub threads: usize,
    /// Whole-run wall time in nanoseconds.
    pub wall_time_ns: u64,
    /// Counter table at capture time (name → value), sorted.
    pub counters: BTreeMap<String, u64>,
    /// Cumulative stage timers in nanoseconds (name → ns), sorted.
    pub timers_ns: BTreeMap<String, u64>,
}

impl Manifest {
    /// Snapshots the live registry into a manifest.
    #[must_use]
    pub fn capture(run: &str, info: BTreeMap<String, String>, wall_time_ns: u64) -> Manifest {
        Manifest {
            run: run.to_string(),
            info,
            threads: crate::thread_count(),
            wall_time_ns,
            counters: crate::snapshot_counters().into_iter().collect(),
            timers_ns: crate::snapshot_timers().into_iter().collect(),
        }
    }

    fn to_value(&self) -> Value {
        let mut map = BTreeMap::new();
        map.insert("schema".to_string(), Value::Str(RUN_SCHEMA.to_string()));
        map.insert("run".to_string(), Value::Str(self.run.clone()));
        map.insert(
            "info".to_string(),
            Value::Obj(
                self.info
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                    .collect(),
            ),
        );
        map.insert("threads".to_string(), Value::uint(self.threads as u64));
        map.insert("wall_time_ns".to_string(), Value::uint(self.wall_time_ns));
        map.insert(
            "counters".to_string(),
            Value::Obj(
                self.counters
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::uint(*v)))
                    .collect(),
            ),
        );
        map.insert(
            "timers_ns".to_string(),
            Value::Obj(
                self.timers_ns
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::uint(*v)))
                    .collect(),
            ),
        );
        Value::Obj(map)
    }

    /// Canonical JSON rendering (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }

    /// Writes the manifest as `<dir>/<run>.json` (payload plus trailing
    /// newline, the same framing [`RunGuard`] uses), creating `dir` if
    /// needed.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation / write failures.
    pub fn write_to_sink(&self, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.run));
        std::fs::write(path, format!("{}\n", self.to_json()))
    }
}

/// A snapshot of the global counter/timer registry taken *before* a unit
/// of work, so [`CounterBaseline::capture_delta`] can attribute exactly
/// that unit's activity to its own manifest.
///
/// The registry is process-global and cumulative; when several studies
/// run sequentially in one process (the in-process `all` executor), a
/// plain [`Manifest::capture`] after study N would include studies
/// 1..N-1 too. Delta capture restores the per-study manifests the old
/// one-child-per-process runner produced.
pub struct CounterBaseline {
    counters: BTreeMap<String, u64>,
    timers: BTreeMap<String, u64>,
    start: Instant,
}

impl CounterBaseline {
    /// Snapshots the registry now and starts the wall clock.
    #[must_use]
    pub fn take() -> CounterBaseline {
        CounterBaseline {
            counters: crate::snapshot_counters().into_iter().collect(),
            timers: crate::snapshot_timers().into_iter().collect(),
            start: Instant::now(),
        }
    }

    /// Captures a manifest whose counters/timers are the registry's
    /// growth since [`CounterBaseline::take`] (zero-delta entries are
    /// dropped — a counter another study registered but this one never
    /// touched does not appear), and whose wall time is the elapsed time
    /// since the baseline.
    #[must_use]
    pub fn capture_delta(&self, run: &str, info: BTreeMap<String, String>) -> Manifest {
        let delta = |now: Vec<(String, u64)>, base: &BTreeMap<String, u64>| {
            now.into_iter()
                .filter_map(|(name, value)| {
                    let d = value.saturating_sub(base.get(&name).copied().unwrap_or(0));
                    (d > 0).then_some((name, d))
                })
                .collect::<BTreeMap<String, u64>>()
        };
        Manifest {
            run: run.to_string(),
            info,
            threads: crate::thread_count(),
            wall_time_ns: u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX),
            counters: delta(crate::snapshot_counters(), &self.counters),
            timers_ns: delta(crate::snapshot_timers(), &self.timers),
        }
    }
}

/// Strips the volatile fields (`threads`, `timers_ns`, `wall_time_ns`)
/// from every object in a manifest document and re-serializes it
/// canonically. Two runs of the same experiment — at any thread count —
/// normalize to byte-identical strings.
pub fn normalize(manifest_json: &str) -> Result<String, JsonError> {
    let mut value = json::parse(manifest_json)?;
    strip_volatile(&mut value);
    Ok(value.to_json())
}

fn strip_volatile(value: &mut Value) {
    match value {
        Value::Obj(map) => {
            for key in VOLATILE_KEYS {
                map.remove(key);
            }
            for child in map.values_mut() {
                strip_volatile(child);
            }
        }
        Value::Arr(items) => {
            for child in items.iter_mut() {
                strip_volatile(child);
            }
        }
        _ => {}
    }
}

/// Merges single-run manifest documents into one `bp-metrics/merged-v1`
/// document: `runs` sorted by each run's `run` name. Fails if any input
/// is not valid JSON.
pub fn merge_manifests(run_jsons: &[String]) -> Result<String, JsonError> {
    merge_manifests_with_children(run_jsons, &[])
}

/// Like [`merge_manifests`], but additionally records per-child outcome
/// tables: `children` (`{name: status}`) so a *partial* merge — some
/// children failed or never ran — names exactly what is missing from
/// `runs` and why, and `child_attempts` (`{name: attempts}`) recording
/// how many executor attempts each child consumed. With an empty
/// `children` slice the output is byte-identical to [`merge_manifests`].
pub fn merge_manifests_with_children(
    run_jsons: &[String],
    children: &[(String, String, u32)],
) -> Result<String, JsonError> {
    let mut runs = Vec::with_capacity(run_jsons.len());
    for raw in run_jsons {
        runs.push(json::parse(raw)?);
    }
    runs.sort_by_key(run_name);
    let mut map = BTreeMap::new();
    map.insert("schema".to_string(), Value::Str(MERGED_SCHEMA.to_string()));
    map.insert("runs".to_string(), Value::Arr(runs));
    if !children.is_empty() {
        map.insert(
            "children".to_string(),
            Value::Obj(
                children
                    .iter()
                    .map(|(name, status, _)| (name.clone(), Value::Str(status.clone())))
                    .collect(),
            ),
        );
        map.insert(
            "child_attempts".to_string(),
            Value::Obj(
                children
                    .iter()
                    .map(|(name, _, attempts)| (name.clone(), Value::uint(u64::from(*attempts))))
                    .collect(),
            ),
        );
    }
    Ok(Value::Obj(map).to_json())
}

fn run_name(value: &Value) -> String {
    value
        .as_obj()
        .and_then(|map| map.get("run"))
        .and_then(Value::as_str)
        .unwrap_or_default()
        .to_string()
}

/// Scopes one run: construct at the top of `main`, annotate with
/// [`RunGuard::info`], and on drop — if the environment configured a
/// manifest sink — the captured manifest is written to
/// `<sink>/<run>.json`. Never touches stdout, so experiment output stays
/// byte-identical with metrics on or off.
pub struct RunGuard {
    run: String,
    info: BTreeMap<String, String>,
    start: Instant,
}

impl RunGuard {
    /// Starts the run clock.
    #[must_use]
    pub fn begin(run: &str) -> RunGuard {
        RunGuard {
            run: run.to_string(),
            info: BTreeMap::new(),
            start: Instant::now(),
        }
    }

    /// Records one configuration key for the manifest's `info` table.
    pub fn info(&mut self, key: &str, value: impl ToString) {
        self.info.insert(key.to_string(), value.to_string());
    }

    /// Captures the manifest now (without writing it) — used by tests.
    #[must_use]
    pub fn capture(&self) -> Manifest {
        let wall = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        Manifest::capture(&self.run, self.info.clone(), wall)
    }
}

impl Drop for RunGuard {
    fn drop(&mut self) {
        let Some(dir) = crate::sink_dir() else {
            return;
        };
        let manifest = self.capture();
        let path = dir.join(format!("{}.json", self.run));
        let payload = format!("{}\n", manifest.to_json());
        let result = std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, payload));
        if let Err(err) = result {
            eprintln!("bp-metrics: failed to write {}: {err}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(run: &str, threads: usize, wall: u64) -> Manifest {
        let mut info = BTreeMap::new();
        info.insert("trace_len".to_string(), "120000".to_string());
        let mut counters = BTreeMap::new();
        counters.insert("tage.lookup".to_string(), 42);
        let mut timers = BTreeMap::new();
        timers.insert("engine.map".to_string(), wall / 2);
        Manifest {
            run: run.to_string(),
            info,
            threads,
            wall_time_ns: wall,
            counters,
            timers_ns: timers,
        }
    }

    #[test]
    fn manifest_json_is_valid_and_sorted() {
        let json_text = sample("fig1", 8, 1000).to_json();
        let value = json::parse(&json_text).unwrap();
        let map = value.as_obj().unwrap();
        assert_eq!(map["schema"].as_str(), Some(RUN_SCHEMA));
        assert_eq!(map["run"].as_str(), Some("fig1"));
        assert_eq!(map["threads"].as_u64(), Some(8));
        // Canonical: serializing the parse result reproduces the input.
        assert_eq!(value.to_json(), json_text);
    }

    #[test]
    fn normalize_strips_only_volatile_fields() {
        let a = sample("fig1", 1, 111).to_json();
        let b = sample("fig1", 8, 999_999).to_json();
        assert_ne!(a, b);
        assert_eq!(normalize(&a).unwrap(), normalize(&b).unwrap());
        let normalized = normalize(&a).unwrap();
        assert!(normalized.contains("tage.lookup"));
        assert!(!normalized.contains("wall_time_ns"));
        assert!(!normalized.contains("threads"));
    }

    #[test]
    fn merge_with_children_records_statuses_and_empty_matches_plain() {
        let runs = vec![sample("fig1", 4, 5).to_json()];
        assert_eq!(
            merge_manifests(&runs).unwrap(),
            merge_manifests_with_children(&runs, &[]).unwrap()
        );
        let children = vec![
            ("fig1".to_string(), "ok".to_string(), 1),
            ("fig2".to_string(), "failed: exit status: 101".to_string(), 2),
        ];
        let merged = merge_manifests_with_children(&runs, &children).unwrap();
        let value = json::parse(&merged).unwrap();
        let table = value.as_obj().unwrap()["children"].as_obj().unwrap();
        assert_eq!(table["fig1"].as_str(), Some("ok"));
        assert_eq!(table["fig2"].as_str(), Some("failed: exit status: 101"));
        let attempts = value.as_obj().unwrap()["child_attempts"].as_obj().unwrap();
        assert_eq!(attempts["fig1"].as_u64(), Some(1));
        assert_eq!(attempts["fig2"].as_u64(), Some(2));
    }

    #[test]
    fn counter_baseline_attributes_only_the_delta() {
        crate::force_enable();
        let c = crate::Counter::get("test.manifest.delta");
        c.add(7);
        let base = CounterBaseline::take();
        c.add(5);
        let m = base.capture_delta("unit", BTreeMap::new());
        assert_eq!(m.counters.get("test.manifest.delta"), Some(&5));
        let quiet = CounterBaseline::take();
        let m2 = quiet.capture_delta("unit", BTreeMap::new());
        assert_eq!(
            m2.counters.get("test.manifest.delta"),
            None,
            "untouched counters are dropped from delta manifests"
        );
    }

    #[test]
    fn merge_sorts_runs_and_tags_schema() {
        let merged = merge_manifests(&[
            sample("fig2", 4, 5).to_json(),
            sample("fig1", 4, 5).to_json(),
        ])
        .unwrap();
        let value = json::parse(&merged).unwrap();
        let map = value.as_obj().unwrap();
        assert_eq!(map["schema"].as_str(), Some(MERGED_SCHEMA));
        let runs = map["runs"].as_arr().unwrap();
        assert_eq!(run_name(&runs[0]), "fig1");
        assert_eq!(run_name(&runs[1]), "fig2");
    }
}
