//! A minimal JSON document model: recursive-descent parser plus a
//! deterministic pretty-printer.
//!
//! The workspace is dependency-free, so manifest emission and validation
//! cannot lean on serde. This module implements exactly the subset the
//! metrics layer needs: full JSON parsing (for validation and
//! normalization) and a canonical serializer — two-space indent, object
//! keys in sorted order, numbers preserved verbatim — so that two
//! semantically equal documents always render byte-identically.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
///
/// Numbers are kept as their raw source token (`Num("12345"`)) rather
/// than converted to `f64`, so `u64` counter values survive a
/// parse → serialize round trip without precision loss.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its raw (syntax-validated) token.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. `BTreeMap` keeps keys sorted, which makes the
    /// serializer canonical.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Builds a number value from an unsigned integer.
    #[must_use]
    pub fn uint(n: u64) -> Value {
        Value::Num(n.to_string())
    }

    /// Returns the object map if this value is an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(map) => Some(map),
            _ => None,
        }
    }

    /// Returns the object map mutably if this value is an object.
    #[must_use]
    pub fn as_obj_mut(&mut self) -> Option<&mut BTreeMap<String, Value>> {
        match self {
            Value::Obj(map) => Some(map),
            _ => None,
        }
    }

    /// Returns the array elements if this value is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the string contents if this value is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the value parsed as `u64` if this is an integer number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// Serializes canonically: two-space indent, sorted object keys,
    /// `\n` separators, no trailing newline.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(raw) => out.push_str(raw),
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Value::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with the byte offset where it occurred.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub pos: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document. Trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|b| std::str::from_utf8(b).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates would need pairing; the metrics
                            // layer never emits them, so reject outright.
                            let ch = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(ch);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s.chars().next().unwrap();
                    if (ch as u32) < 0x20 {
                        return Err(self.err("unescaped control character in string"));
                    }
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_digits = self.digits();
        if int_digits == 0 {
            return Err(self.err("expected digits in number"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if self.digits() == 0 {
                return Err(self.err("expected digits after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.digits() == 0 {
                return Err(self.err("expected digits in exponent"));
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number tokens are ASCII")
            .to_string();
        Ok(Value::Num(raw))
    }

    fn digits(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        self.pos - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_canonical_document() {
        let src = "{\n  \"a\": [\n    1,\n    true,\n    null\n  ],\n  \"b\": \"x\\\"y\"\n}";
        let value = parse(src).unwrap();
        assert_eq!(value.to_json(), src);
    }

    #[test]
    fn preserves_u64_precision() {
        let big = u64::MAX;
        let value = parse(&format!("{{\"n\": {big}}}")).unwrap();
        assert_eq!(value.as_obj().unwrap()["n"].as_u64(), Some(big));
    }

    #[test]
    fn sorts_object_keys() {
        let value = parse("{\"b\": 1, \"a\": 2}").unwrap();
        assert_eq!(value.to_json(), "{\n  \"a\": 2,\n  \"b\": 1\n}");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("01a").is_err());
    }
}
