//! Cooperative cancellation tokens with deadline propagation.
//!
//! Long studies must be stoppable without `kill`: a timed-out or
//! user-cancelled study should wind down at the next safe point — the
//! boundary between two 16K-record replay blocks — instead of being torn
//! mid-write. This module provides the primitive: a [`CancelToken`] that
//! an executor arms (flag, deadline, or both) and that instrumented loops
//! poll at block granularity via [`checkpoint`].
//!
//! It lives in `bp-metrics` (not `bp-core`) for the same reason
//! [`crate::faultpoint`] does: the crates that host the hot block loops
//! (`bp-pipeline`, `bp-predictors`, `bp-workloads`) sit *below* `bp-core`
//! in the dependency graph. `bp_core::exec` re-exports the token and
//! builds the executor on top.
//!
//! # Scope propagation
//!
//! Hot loops cannot take a token parameter without threading it through
//! every signature in the workspace, so the active token is installed as
//! a thread-local *scope* ([`set_scope`]) around each task. Thread-local
//! (not process-global) so concurrent tests — and eventually concurrent
//! server requests — can each run under their own token without
//! cancelling each other. Code that fans work out to other threads
//! re-installs the caller's scope in each worker (the `Engine` captures
//! [`current`] at map entry and scopes every worker with it), so every
//! parallel shard of a cancelled task stops. The fast path for
//! uninstrumented runs is one thread-local is-some check ([`active`]):
//! production replays pay nothing measurable at block granularity.
//!
//! # Cancellation is a panic
//!
//! [`checkpoint`] reports cancellation by panicking with a dedicated
//! [`Cancelled`] payload. Unwinding is the one mechanism that already
//! exits every loop, drops every guard, and is caught at every task
//! boundary (`Engine::try_map`, the executor's `catch_unwind`) — a
//! `Result` plumbed through the replay hot loops would cost real
//! throughput for a cold path. Catchers downcast to [`Cancelled`] to
//! distinguish an orderly stop from a genuine panic.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// The panic payload [`checkpoint`] unwinds with. Task-boundary catchers
/// (`Engine::try_map`, `bp_core::exec`) downcast to this type to classify
/// a cooperative stop as cancellation rather than failure-by-panic.
#[derive(Clone, Debug)]
pub struct Cancelled {
    /// Why the token was cancelled, plus the site that observed it.
    pub reason: String,
}

#[derive(Default)]
struct Inner {
    cancelled: AtomicBool,
    /// Why `cancelled` was set; empty until then.
    reason: Mutex<String>,
    /// Wall-clock deadline; observed lazily by [`CancelToken::is_cancelled`].
    deadline: Mutex<Option<Instant>>,
}

/// A shareable cancellation handle: cheap to clone, safe to poll from any
/// thread. Cancellation is one-way and sticky — once cancelled (directly
/// or by deadline expiry), a token stays cancelled.
#[derive(Clone, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.inner.cancelled.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl CancelToken {
    /// A fresh, uncancelled token with no deadline.
    #[must_use]
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Cancels the token with a reason. The first cancellation wins; later
    /// calls (including deadline expiry) keep the original reason.
    pub fn cancel(&self, reason: &str) {
        if self
            .inner
            .cancelled
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            *self.inner.reason.lock().unwrap_or_else(PoisonError::into_inner) =
                reason.to_string();
        }
    }

    /// Arms a wall-clock deadline `after` from now. Expiry is observed by
    /// the next [`CancelToken::is_cancelled`] (or [`checkpoint`]) call —
    /// or immediately by a watchdog thread that calls
    /// [`CancelToken::cancel`] at the deadline.
    pub fn set_deadline_in(&self, after: Duration) {
        let at = Instant::now().checked_add(after);
        *self.inner.deadline.lock().unwrap_or_else(PoisonError::into_inner) = at;
    }

    /// The armed deadline, if any.
    #[must_use]
    pub fn deadline(&self) -> Option<Instant> {
        *self.inner.deadline.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Whether the token is cancelled — by an explicit [`CancelToken::cancel`]
    /// or because its deadline has passed (checked lazily here, so a
    /// deadline works even without a watchdog thread).
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Acquire) {
            return true;
        }
        let expired = self
            .deadline()
            .is_some_and(|at| Instant::now() >= at);
        if expired {
            self.cancel("deadline expired");
        }
        expired
    }

    /// The cancellation reason (empty if not cancelled).
    #[must_use]
    pub fn reason(&self) -> String {
        self.inner.reason.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }
}

thread_local! {
    /// The calling thread's cancellation scope, if any. Thread-local so
    /// concurrent tests/requests never observe each other's tokens; code
    /// that spawns workers re-installs [`current`] in each of them.
    static SCOPE: std::cell::RefCell<Option<CancelToken>> =
        const { std::cell::RefCell::new(None) };
}

/// Restores the previous scope token on drop, so scopes nest correctly
/// (an executor task that itself runs a scoped sub-task).
pub struct ScopeGuard {
    prev: Option<CancelToken>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        SCOPE.with(|slot| *slot.borrow_mut() = prev);
    }
}

/// Installs `token` as this thread's cancellation scope until the
/// returned guard drops. Instrumented block loops poll it via
/// [`checkpoint`] / [`cancelled`]; worker-spawning code propagates it
/// with [`current`] + `set_scope` in each worker.
#[must_use]
pub fn set_scope(token: CancelToken) -> ScopeGuard {
    let prev = SCOPE.with(|slot| slot.borrow_mut().replace(token));
    ScopeGuard { prev }
}

/// The calling thread's scope token, if one is installed — what an
/// engine captures at fan-out time to scope its workers.
#[must_use]
pub fn current() -> Option<CancelToken> {
    SCOPE.with(|slot| slot.borrow().clone())
}

/// True while this thread has a cancellation scope — one thread-local
/// is-some check. Hot loops use this to skip slicing/polling entirely on
/// production runs.
#[must_use]
pub fn active() -> bool {
    SCOPE.with(|slot| slot.borrow().is_some())
}

/// True when this thread's scope token (if any) is cancelled.
#[must_use]
pub fn cancelled() -> bool {
    SCOPE.with(|slot| slot.borrow().as_ref().is_some_and(CancelToken::is_cancelled))
}

/// A cooperative cancellation point: returns immediately unless the
/// scope token is cancelled, in which case it unwinds with a
/// [`Cancelled`] payload naming `site`.
///
/// Place at block boundaries (per 16K-record replay slice, per training
/// block, per prepare chunk) — frequent enough that a cancelled study
/// stops within one block, coarse enough to cost nothing measurable.
///
/// # Panics
///
/// Panics (via `panic_any`, with a [`Cancelled`] payload) when the scope
/// is cancelled — that is its job.
pub fn checkpoint(site: &str) {
    let Some(token) = current() else { return };
    if token.is_cancelled() {
        crate::Counter::get("cancel.checkpoint_hits").incr();
        let reason = token.reason();
        std::panic::panic_any(Cancelled {
            reason: format!("{reason} (stopped at {site})"),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_cancel_is_sticky_and_first_reason_wins() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.cancel("first");
        t.cancel("second");
        assert!(t.is_cancelled());
        assert_eq!(t.reason(), "first");
        // Clones share state.
        let c = t.clone();
        assert!(c.is_cancelled());
    }

    #[test]
    fn deadline_expiry_cancels_lazily() {
        let t = CancelToken::new();
        t.set_deadline_in(Duration::ZERO);
        assert!(t.is_cancelled());
        assert_eq!(t.reason(), "deadline expired");

        let far = CancelToken::new();
        far.set_deadline_in(Duration::from_secs(3600));
        assert!(!far.is_cancelled());
    }

    #[test]
    fn checkpoint_is_inert_without_a_scope_and_unwinds_with_cancelled() {
        assert!(!active());
        checkpoint("test.site"); // no scope: no-op

        let t = CancelToken::new();
        let guard = set_scope(t.clone());
        assert!(active());
        checkpoint("test.site"); // scope installed but not cancelled
        t.cancel("unit test");
        assert!(cancelled());
        let payload = std::panic::catch_unwind(|| checkpoint("test.site"))
            .expect_err("cancelled checkpoint must unwind");
        let c = payload.downcast_ref::<Cancelled>().expect("Cancelled payload");
        assert!(c.reason.contains("unit test"), "{}", c.reason);
        assert!(c.reason.contains("test.site"), "{}", c.reason);
        drop(guard);
        assert!(!active(), "guard restores the empty scope");
    }

    #[test]
    fn scopes_nest_and_restore() {
        let outer = CancelToken::new();
        let inner = CancelToken::new();
        let og = set_scope(outer.clone());
        {
            let ig = set_scope(inner.clone());
            inner.cancel("inner");
            assert!(cancelled());
            drop(ig);
        }
        assert!(active(), "outer scope restored");
        assert!(!cancelled(), "outer token is not cancelled");
        drop(og);
        assert!(!active());
    }

    #[test]
    fn scopes_are_thread_local() {
        let t = CancelToken::new();
        t.cancel("this thread only");
        let _g = set_scope(t);
        assert!(cancelled());
        std::thread::spawn(|| {
            assert!(!active(), "scopes must not leak across threads");
            checkpoint("other.thread"); // inert
        })
        .join()
        .expect("no panic on the other thread");
    }
}
