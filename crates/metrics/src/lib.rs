//! `bp-metrics` — a zero-cost-when-disabled observability layer.
//!
//! Every hot path in branch-lab (TAGE bank lookups, scoreboard flushes,
//! trace-store hits, study fan-out) can report into a process-wide
//! registry of named [`Counter`]s and cumulative stage timers. The whole
//! layer is gated by the `BRANCH_LAB_METRICS` environment variable:
//!
//! | Value | Behaviour |
//! |---|---|
//! | unset, `""`, `0` | Disabled. Counter handles resolve to no-ops; no allocation, no atomics, no registry traffic. |
//! | `1` | Enabled. Run manifests are written to `out/metrics/<run>.json`. |
//! | anything else | Enabled. The value is the manifest output directory. |
//!
//! The design rule that keeps the disabled path cheap: instrumented code
//! resolves a [`Counter`] handle **once, at construction time** (of a
//! predictor, a simulation, a store). When metrics are disabled the
//! handle holds `None` and every `add` is a branch on an immediate —
//! there is no name lookup, no atomic, and no lock anywhere near a hot
//! loop. Measured replay overhead of the disabled path is well under 2%
//! (`cargo bench -p bp-bench --bench metrics_overhead`).
//!
//! Because predictions never depend on a counter value, study outputs
//! are bitwise identical with metrics on or off; manifests go to files,
//! never stdout. Counters use relaxed atomics and every worker does the
//! same total work regardless of `BRANCH_LAB_THREADS`, so counter totals
//! are deterministic across thread counts — only the timing fields vary
//! (see [`manifest::normalize`]).

#![warn(missing_docs)]

pub mod cancel;
pub mod faultpoint;
pub mod json;
pub mod manifest;

pub use manifest::{
    merge_manifests, merge_manifests_with_children, normalize, CounterBaseline, Manifest, RunGuard,
};

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// How the metrics layer was configured by `BRANCH_LAB_METRICS`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Counters are no-ops; nothing is written.
    Disabled,
    /// Counters are live; manifests are written under `sink` (if any).
    Enabled {
        /// Directory that run manifests are written to.
        sink: Option<PathBuf>,
    },
}

impl Mode {
    /// Parses the raw `BRANCH_LAB_METRICS` value. Pure, for testability:
    /// `None`/`""`/`"0"` disable, `"1"` enables with the default sink,
    /// any other value enables with that value as the sink directory.
    #[must_use]
    pub fn parse(raw: Option<&str>) -> Mode {
        match raw {
            None | Some("" | "0") => Mode::Disabled,
            Some("1") => Mode::Enabled {
                sink: Some(PathBuf::from("out/metrics")),
            },
            Some(dir) => Mode::Enabled {
                sink: Some(PathBuf::from(dir)),
            },
        }
    }
}

fn mode() -> &'static Mode {
    static MODE: OnceLock<Mode> = OnceLock::new();
    MODE.get_or_init(|| Mode::parse(std::env::var("BRANCH_LAB_METRICS").ok().as_deref()))
}

static FORCED: AtomicBool = AtomicBool::new(false);

/// Enables the counter registry for the rest of the process regardless
/// of the environment, without configuring a manifest sink. Intended for
/// tests; instrumented objects constructed *after* this call get live
/// counter handles.
pub fn force_enable() {
    FORCED.store(true, Ordering::SeqCst);
}

/// Whether counters are live. Checked when instrumented code constructs
/// its handles — never inside a hot loop.
#[must_use]
pub fn enabled() -> bool {
    FORCED.load(Ordering::Relaxed) || matches!(mode(), Mode::Enabled { .. })
}

/// The manifest output directory, if one was configured via the
/// environment. [`force_enable`] does not set a sink.
#[must_use]
pub fn sink_dir() -> Option<&'static std::path::Path> {
    match mode() {
        Mode::Enabled { sink: Some(dir) } => Some(dir.as_path()),
        _ => None,
    }
}

type Registry = Mutex<BTreeMap<String, &'static AtomicU64>>;

fn counters() -> &'static Registry {
    static CELLS: OnceLock<Registry> = OnceLock::new();
    CELLS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn timers() -> &'static Registry {
    static CELLS: OnceLock<Registry> = OnceLock::new();
    CELLS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn slot(registry: &'static Registry, name: &str) -> &'static AtomicU64 {
    let mut map = registry.lock().expect("metrics registry poisoned");
    if let Some(cell) = map.get(name) {
        return cell;
    }
    // Leak one u64 per distinct name for the life of the process; the
    // set of names is small and fixed, so this is bounded.
    let cell: &'static AtomicU64 = Box::leak(Box::new(AtomicU64::new(0)));
    map.insert(name.to_string(), cell);
    cell
}

/// A handle to a named monotonic counter.
///
/// Copyable and cheap: when metrics are disabled the handle is `None`
/// and [`Counter::add`] compiles to a single predictable branch.
/// Resolve handles at construction time, not in hot loops.
#[derive(Clone, Copy, Debug, Default)]
pub struct Counter(Option<&'static AtomicU64>);

impl Counter {
    /// Resolves (creating if needed) the counter named `name`, or a
    /// no-op handle when metrics are disabled.
    #[must_use]
    pub fn get(name: &str) -> Counter {
        if !enabled() {
            return Counter(None);
        }
        Counter(Some(slot(counters(), name)))
    }

    /// A handle that is always a no-op.
    #[must_use]
    pub const fn disabled() -> Counter {
        Counter(None)
    }

    /// Adds `n` to the counter (relaxed; totals only).
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increments the counter by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value (0 for a disabled handle).
    #[must_use]
    pub fn value(&self) -> u64 {
        self.0.map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// Accumulates wall time into the named cumulative stage timer when
/// dropped. Obtain via [`stage`] or [`time`].
pub struct StageTimer {
    start: Option<Instant>,
    cell: Option<&'static AtomicU64>,
}

impl StageTimer {
    fn noop() -> StageTimer {
        StageTimer {
            start: None,
            cell: None,
        }
    }
}

impl Drop for StageTimer {
    fn drop(&mut self) {
        if let (Some(start), Some(cell)) = (self.start, self.cell) {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            cell.fetch_add(ns, Ordering::Relaxed);
        }
    }
}

/// Starts timing the named stage; elapsed nanoseconds are added to the
/// stage's cumulative timer when the returned guard drops. A no-op
/// (not even a clock read) when metrics are disabled. Concurrent guards
/// for the same stage accumulate their overlapping durations.
#[must_use]
pub fn stage(name: &str) -> StageTimer {
    if !enabled() {
        return StageTimer::noop();
    }
    StageTimer {
        start: Some(Instant::now()),
        cell: Some(slot(timers(), name)),
    }
}

/// Runs `f`, charging its wall time to the named stage timer.
pub fn time<R>(name: &str, f: impl FnOnce() -> R) -> R {
    let _guard = stage(name);
    f()
}

/// All counters with their current values, sorted by name.
#[must_use]
pub fn snapshot_counters() -> Vec<(String, u64)> {
    let map = counters().lock().expect("metrics registry poisoned");
    map.iter()
        .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
        .collect()
}

/// All stage timers with cumulative nanoseconds, sorted by name.
#[must_use]
pub fn snapshot_timers() -> Vec<(String, u64)> {
    let map = timers().lock().expect("metrics registry poisoned");
    map.iter()
        .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
        .collect()
}

/// Zeroes every registered counter and timer (the names stay
/// registered). Intended for tests that need a clean slate.
pub fn reset() {
    for registry in [counters(), timers()] {
        let map = registry.lock().expect("metrics registry poisoned");
        for cell in map.values() {
            cell.store(0, Ordering::Relaxed);
        }
    }
}

/// The worker-thread count the experiment engine will use, mirroring
/// `bp_core::parallel::thread_count` (re-implemented here so the
/// manifest layer stays dependency-free within the workspace).
#[must_use]
pub fn thread_count() -> usize {
    match std::env::var("BRANCH_LAB_THREADS") {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => 1,
        },
        Err(_) => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parsing() {
        assert_eq!(Mode::parse(None), Mode::Disabled);
        assert_eq!(Mode::parse(Some("")), Mode::Disabled);
        assert_eq!(Mode::parse(Some("0")), Mode::Disabled);
        assert_eq!(
            Mode::parse(Some("1")),
            Mode::Enabled {
                sink: Some(PathBuf::from("out/metrics"))
            }
        );
        assert_eq!(
            Mode::parse(Some("/tmp/m")),
            Mode::Enabled {
                sink: Some(PathBuf::from("/tmp/m"))
            }
        );
    }

    #[test]
    fn disabled_handle_is_inert() {
        let c = Counter::disabled();
        c.incr();
        c.add(10);
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn counters_accumulate_once_enabled() {
        force_enable();
        let c = Counter::get("test.unit.counter");
        c.add(3);
        c.incr();
        assert_eq!(c.value(), 4);
        let snap = snapshot_counters();
        assert!(snap.contains(&("test.unit.counter".to_string(), 4)));
        // Same name resolves to the same cell.
        let again = Counter::get("test.unit.counter");
        again.incr();
        assert_eq!(c.value(), 5);
    }

    #[test]
    fn timers_record_elapsed() {
        force_enable();
        {
            let _t = stage("test.unit.stage");
            std::hint::black_box(0u64);
        }
        let snap = snapshot_timers();
        let entry = snap.iter().find(|(n, _)| n == "test.unit.stage");
        assert!(entry.is_some());
    }
}
