//! Program intermediate representation and builder.
//!
//! A [`Program`] is a control-flow graph of [`Block`]s over the `bp-trace`
//! ISA. Workload generators build programs with [`ProgramBuilder`]; the
//! [`Interpreter`](crate::Interpreter) executes them to produce traces.

use std::fmt;

use bp_trace::{Cond, Reg};

/// Identifier of a basic block within a [`Program`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub(crate) u32);

impl BlockId {
    /// Index of the block in the program's block list.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// A straight-line (non-control-flow) instruction.
///
/// All arithmetic is wrapping. Memory operands address a word-indexed data
/// memory: the effective word index is `(regs[base] + offset)` masked into
/// the memory size, so any register value is a valid address.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// `dst = imm`
    MovI {
        /// Destination register.
        dst: Reg,
        /// Immediate operand.
        imm: u64,
    },
    /// `dst = a + b`
    Add {
        /// Destination register.
        dst: Reg,
        /// First source register.
        a: Reg,
        /// Second source register.
        b: Reg,
    },
    /// `dst = a - b`
    Sub {
        /// Destination register.
        dst: Reg,
        /// First source register.
        a: Reg,
        /// Second source register.
        b: Reg,
    },
    /// `dst = a * b` (multi-cycle in the timing model)
    Mul {
        /// Destination register.
        dst: Reg,
        /// First source register.
        a: Reg,
        /// Second source register.
        b: Reg,
    },
    /// `dst = a ^ b`
    Xor {
        /// Destination register.
        dst: Reg,
        /// First source register.
        a: Reg,
        /// Second source register.
        b: Reg,
    },
    /// `dst = a & b`
    And {
        /// Destination register.
        dst: Reg,
        /// First source register.
        a: Reg,
        /// Second source register.
        b: Reg,
    },
    /// `dst = a | b`
    Or {
        /// Destination register.
        dst: Reg,
        /// First source register.
        a: Reg,
        /// Second source register.
        b: Reg,
    },
    /// `dst = a + imm`
    AddI {
        /// Destination register.
        dst: Reg,
        /// First source register.
        a: Reg,
        /// Immediate operand.
        imm: u64,
    },
    /// `dst = a * imm` (multi-cycle)
    MulI {
        /// Destination register.
        dst: Reg,
        /// First source register.
        a: Reg,
        /// Immediate operand.
        imm: u64,
    },
    /// `dst = a & imm`
    AndI {
        /// Destination register.
        dst: Reg,
        /// First source register.
        a: Reg,
        /// Immediate operand.
        imm: u64,
    },
    /// `dst = a % m`
    ///
    /// `m` must be non-zero (validated at build time by
    /// [`ProgramBuilder::push`]).
    Rem {
        /// Destination register.
        dst: Reg,
        /// First source register.
        a: Reg,
        /// Modulus (non-zero).
        m: u64,
    },
    /// `dst = a >> sh`
    ShrI {
        /// Destination register.
        dst: Reg,
        /// First source register.
        a: Reg,
        /// Shift amount in bits.
        sh: u32,
    },
    /// `dst = mem[(a + offset) mod memsize]`
    Load {
        /// Destination register.
        dst: Reg,
        /// Base-address register.
        base: Reg,
        /// Word offset added to the base register.
        offset: u64,
    },
    /// `mem[(base + offset) mod memsize] = src`
    Store {
        /// Register whose value is stored.
        src: Reg,
        /// Base-address register.
        base: Reg,
        /// Word offset added to the base register.
        offset: u64,
    },
    /// No operation (pipeline filler).
    Nop,
}

impl Op {
    /// Registers read by this operation (up to two).
    #[must_use]
    pub fn sources(&self) -> (Option<Reg>, Option<Reg>) {
        match *self {
            Op::MovI { .. } | Op::Nop => (None, None),
            Op::Add { a, b, .. }
            | Op::Sub { a, b, .. }
            | Op::Mul { a, b, .. }
            | Op::Xor { a, b, .. }
            | Op::And { a, b, .. }
            | Op::Or { a, b, .. } => (Some(a), Some(b)),
            Op::AddI { a, .. }
            | Op::MulI { a, .. }
            | Op::AndI { a, .. }
            | Op::Rem { a, .. }
            | Op::ShrI { a, .. }
            | Op::Load { base: a, .. } => (Some(a), None),
            Op::Store { src, base, .. } => (Some(src), Some(base)),
        }
    }

    /// Register written by this operation, if any.
    #[must_use]
    pub fn dest(&self) -> Option<Reg> {
        match *self {
            Op::MovI { dst, .. }
            | Op::Add { dst, .. }
            | Op::Sub { dst, .. }
            | Op::Mul { dst, .. }
            | Op::Xor { dst, .. }
            | Op::And { dst, .. }
            | Op::Or { dst, .. }
            | Op::AddI { dst, .. }
            | Op::MulI { dst, .. }
            | Op::AndI { dst, .. }
            | Op::Rem { dst, .. }
            | Op::ShrI { dst, .. }
            | Op::Load { dst, .. } => Some(dst),
            Op::Store { .. } | Op::Nop => None,
        }
    }
}

/// Block terminator — the control-flow instruction ending a basic block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Terminator {
    /// Conditional branch comparing two registers.
    Br {
        /// Comparison condition.
        cond: Cond,
        /// Left operand register.
        a: Reg,
        /// Right operand register.
        b: Reg,
        /// Target when the condition holds.
        taken: BlockId,
        /// Target when it does not.
        fallthrough: BlockId,
    },
    /// Conditional branch comparing a register with an immediate.
    BrI {
        /// Comparison condition.
        cond: Cond,
        /// Left operand register.
        a: Reg,
        /// Right immediate operand.
        imm: u64,
        /// Target when the condition holds.
        taken: BlockId,
        /// Target when it does not.
        fallthrough: BlockId,
    },
    /// Unconditional direct jump.
    Jmp(BlockId),
    /// Indirect jump through a table: the target is
    /// `targets[index mod targets.len()]`.
    Switch {
        /// Register holding the selector value.
        index: Reg,
        /// Jump-table targets (must be non-empty).
        targets: Vec<BlockId>,
    },
    /// Direct call: jumps to `callee`, pushing `ret_to` on the call stack.
    Call {
        /// Entry block of the callee.
        callee: BlockId,
        /// Block to return to on `Ret`.
        ret_to: BlockId,
    },
    /// Return to the most recent `Call`'s `ret_to` block. Halts the machine
    /// if the call stack is empty.
    Ret,
    /// Stop execution.
    Halt,
}

/// A basic block: straight-line instructions plus a terminator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Block {
    /// Straight-line instructions, executed in order.
    pub insts: Vec<Op>,
    /// The terminating control-flow instruction.
    pub term: Terminator,
}

/// An executable synthetic program.
///
/// Create programs through [`ProgramBuilder`]; the builder validates block
/// references and computes instruction addresses.
///
/// # Examples
///
/// ```
/// use bp_workloads::{ProgramBuilder, Op, Terminator};
/// use bp_trace::{Cond, Reg};
///
/// let mut b = ProgramBuilder::new();
/// let entry = b.block();
/// let exit = b.block();
/// b.push(entry, Op::MovI { dst: Reg::new(1), imm: 3 });
/// b.term(entry, Terminator::BrI {
///     cond: Cond::Eq,
///     a: Reg::new(1),
///     imm: 3,
///     taken: exit,
///     fallthrough: exit,
/// });
/// b.term(exit, Terminator::Halt);
/// let program = b.finish(entry, 12);
/// assert_eq!(program.blocks().len(), 2);
/// assert!(program.static_cond_branch_count() == 1);
/// ```
#[derive(Clone, Debug)]
pub struct Program {
    blocks: Vec<Block>,
    addrs: Vec<u64>,
    entry: BlockId,
    mem_words_log2: u32,
    annotations: Vec<(BlockId, String)>,
}

/// Byte distance between consecutive instruction addresses.
pub const INST_BYTES: u64 = 4;

/// Base address of the first block.
pub const CODE_BASE: u64 = 0x0040_0000;

impl Program {
    /// All blocks, indexable by [`BlockId::index`].
    #[must_use]
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// The block executed first.
    #[must_use]
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Base address of a block's first instruction.
    #[must_use]
    pub fn block_addr(&self, id: BlockId) -> u64 {
        self.addrs[id.index()]
    }

    /// Address of the terminator instruction of a block.
    #[must_use]
    pub fn term_addr(&self, id: BlockId) -> u64 {
        self.addrs[id.index()] + INST_BYTES * self.blocks[id.index()].insts.len() as u64
    }

    /// log2 of the data-memory size in 64-bit words.
    #[must_use]
    pub fn mem_words_log2(&self) -> u32 {
        self.mem_words_log2
    }

    /// Number of static conditional-branch sites in the program.
    #[must_use]
    pub fn static_cond_branch_count(&self) -> usize {
        self.blocks
            .iter()
            .filter(|b| matches!(b.term, Terminator::Br { .. } | Terminator::BrI { .. }))
            .count()
    }

    /// Total number of static instructions (including terminators).
    #[must_use]
    pub fn static_inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len() + 1).sum()
    }

    /// Ground-truth annotations attached by generators: `(terminator IP,
    /// label)` pairs, e.g. the planted variable-gap H2P branch sites.
    pub fn annotated_ips(&self) -> impl Iterator<Item = (u64, &str)> + '_ {
        self.annotations
            .iter()
            .map(|(b, l)| (self.term_addr(*b), l.as_str()))
    }

    /// IPs of terminators annotated with `label`.
    #[must_use]
    pub fn ips_labeled(&self, label: &str) -> Vec<u64> {
        self.annotated_ips()
            .filter(|(_, l)| *l == label)
            .map(|(ip, _)| ip)
            .collect()
    }
}

/// Incremental builder for [`Program`]s.
///
/// Blocks are allocated first (so they can reference each other), then
/// filled with instructions and terminated. [`ProgramBuilder::finish`]
/// validates that every block has a terminator and that all referenced
/// blocks exist.
#[derive(Clone, Debug, Default)]
pub struct ProgramBuilder {
    insts: Vec<Vec<Op>>,
    terms: Vec<Option<Terminator>>,
    annotations: Vec<(BlockId, String)>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a new, empty block and returns its id.
    pub fn block(&mut self) -> BlockId {
        let id = BlockId(u32::try_from(self.insts.len()).expect("too many blocks"));
        self.insts.push(Vec::new());
        self.terms.push(None);
        id
    }

    /// Appends an instruction to `block`.
    ///
    /// # Panics
    ///
    /// Panics if the block is unknown, or if the instruction is invalid
    /// (currently: `Rem` with a zero modulus, which would trap at run time).
    pub fn push(&mut self, block: BlockId, op: Op) {
        if let Op::Rem { m, .. } = op {
            assert!(m != 0, "Rem modulus must be non-zero");
        }
        self.insts[block.index()].push(op);
    }

    /// Attaches a ground-truth label to `block`'s terminator (e.g.
    /// `"vg-h2p"` for a planted variable-gap H2P branch).
    pub fn annotate(&mut self, block: BlockId, label: impl Into<String>) {
        self.annotations.push((block, label.into()));
    }

    /// Sets the terminator of `block`.
    ///
    /// # Panics
    ///
    /// Panics if the block already has a terminator or a `Switch` has an
    /// empty target table.
    pub fn term(&mut self, block: BlockId, term: Terminator) {
        if let Terminator::Switch { targets, .. } = &term {
            assert!(!targets.is_empty(), "Switch must have at least one target");
        }
        let slot = &mut self.terms[block.index()];
        assert!(slot.is_none(), "block {block} already terminated");
        *slot = Some(term);
    }

    /// Number of blocks allocated so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if no blocks have been allocated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Finalizes the program, computing block addresses.
    ///
    /// `mem_words_log2` sets the data-memory size to `2^mem_words_log2`
    /// 64-bit words.
    ///
    /// # Panics
    ///
    /// Panics if a block has no terminator, a terminator references an
    /// unknown block, or `mem_words_log2` is outside `4..=28`.
    #[must_use]
    pub fn finish(self, entry: BlockId, mem_words_log2: u32) -> Program {
        assert!(
            (4..=28).contains(&mem_words_log2),
            "mem_words_log2 {mem_words_log2} outside supported range 4..=28"
        );
        let n = self.insts.len();
        let check = |id: BlockId| {
            assert!(
                id.index() < n,
                "terminator references unknown block {id}"
            );
        };
        check(entry);
        let mut blocks = Vec::with_capacity(n);
        for (i, (insts, term)) in self.insts.into_iter().zip(self.terms).enumerate() {
            let term = term.unwrap_or_else(|| panic!("block bb{i} has no terminator"));
            match &term {
                Terminator::Br { taken, fallthrough, .. }
                | Terminator::BrI { taken, fallthrough, .. } => {
                    check(*taken);
                    check(*fallthrough);
                }
                Terminator::Jmp(t) => check(*t),
                Terminator::Switch { targets, .. } => targets.iter().copied().for_each(check),
                Terminator::Call { callee, ret_to } => {
                    check(*callee);
                    check(*ret_to);
                }
                Terminator::Ret | Terminator::Halt => {}
            }
            blocks.push(Block { insts, term });
        }
        let mut addrs = Vec::with_capacity(n);
        let mut addr = CODE_BASE;
        for b in &blocks {
            addrs.push(addr);
            addr += INST_BYTES * (b.insts.len() as u64 + 1);
        }
        Program {
            blocks,
            addrs,
            entry,
            mem_words_log2,
            annotations: self.annotations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_block_program() -> Program {
        let mut b = ProgramBuilder::new();
        let e = b.block();
        let x = b.block();
        b.push(e, Op::MovI { dst: Reg::new(0), imm: 1 });
        b.push(e, Op::AddI { dst: Reg::new(0), a: Reg::new(0), imm: 2 });
        b.term(e, Terminator::Jmp(x));
        b.term(x, Terminator::Halt);
        b.finish(e, 10)
    }

    #[test]
    fn addresses_are_sequential() {
        let p = two_block_program();
        assert_eq!(p.block_addr(BlockId(0)), CODE_BASE);
        assert_eq!(p.term_addr(BlockId(0)), CODE_BASE + 2 * INST_BYTES);
        assert_eq!(p.block_addr(BlockId(1)), CODE_BASE + 3 * INST_BYTES);
        assert_eq!(p.static_inst_count(), 4);
    }

    #[test]
    fn sources_and_dest() {
        let op = Op::Store {
            src: Reg::new(1),
            base: Reg::new(2),
            offset: 4,
        };
        assert_eq!(op.sources(), (Some(Reg::new(1)), Some(Reg::new(2))));
        assert_eq!(op.dest(), None);
        let op = Op::Load {
            dst: Reg::new(3),
            base: Reg::new(4),
            offset: 0,
        };
        assert_eq!(op.dest(), Some(Reg::new(3)));
    }

    #[test]
    fn cond_branch_count() {
        let mut b = ProgramBuilder::new();
        let e = b.block();
        let t = b.block();
        b.term(
            e,
            Terminator::Br {
                cond: Cond::Lt,
                a: Reg::new(0),
                b: Reg::new(1),
                taken: t,
                fallthrough: t,
            },
        );
        b.term(t, Terminator::Halt);
        let p = b.finish(e, 8);
        assert_eq!(p.static_cond_branch_count(), 1);
    }

    #[test]
    #[should_panic(expected = "no terminator")]
    fn missing_terminator_panics() {
        let mut b = ProgramBuilder::new();
        let e = b.block();
        let _ = b.finish(e, 8);
    }

    #[test]
    #[should_panic(expected = "unknown block")]
    fn dangling_reference_panics() {
        let mut b = ProgramBuilder::new();
        let e = b.block();
        b.term(e, Terminator::Jmp(BlockId(99)));
        let _ = b.finish(e, 8);
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn double_terminator_panics() {
        let mut b = ProgramBuilder::new();
        let e = b.block();
        b.term(e, Terminator::Halt);
        b.term(e, Terminator::Halt);
    }

    #[test]
    #[should_panic(expected = "modulus")]
    fn zero_rem_panics() {
        let mut b = ProgramBuilder::new();
        let e = b.block();
        b.push(e, Op::Rem { dst: Reg::new(0), a: Reg::new(0), m: 0 });
    }
}
