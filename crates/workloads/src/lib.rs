//! Synthetic workload generation for `branch-lab`.
//!
//! The paper's measurements require instruction traces whose branch
//! behaviour spans predictable code, systematically hard-to-predict (H2P)
//! branches, and rarely-executed branches, with full ground truth for
//! dependency analysis. This crate provides:
//!
//! * a program IR and [`ProgramBuilder`] ([`Program`]);
//! * a deterministic [`Interpreter`] that executes programs into
//!   [`bp_trace::Trace`]s;
//! * composable behaviour [`motifs`];
//! * [`WorkloadSpec`] — a parameterized benchmark description with multiple
//!   *application inputs* per benchmark (the paper's §III-A methodology);
//! * the two datasets: [`specint_suite`] (Table I) and [`lcf_suite`]
//!   (Table II).
//!
//! # Examples
//!
//! ```
//! use bp_workloads::specint_suite;
//!
//! let leela = &specint_suite()[6];
//! assert_eq!(leela.name, "641.leela_s");
//! let trace = leela.trace(0, 10_000);
//! assert_eq!(trace.len(), 10_000);
//! // Traces are deterministic per (workload, input).
//! assert_eq!(trace.insts(), leela.trace(0, 10_000).insts());
//! ```

#![warn(missing_docs)]

mod disasm;
mod interp;
pub mod motifs;
mod program;
mod spec;
mod store;
mod suite;

pub use interp::Interpreter;
pub use motifs::{Emitter, RareTier, VarGapSpec};
pub use program::{Block, BlockId, Op, Program, ProgramBuilder, Terminator, CODE_BASE, INST_BYTES};
pub use spec::{Family, MotifSet, WorkloadSpec};
pub use store::{StoreReader, StoreStats, TraceKey, TraceStore};
pub use suite::{
    find_workload, lcf_suite, specint_suite, suite_digest, workload_names, LCF_TRACE_LEN,
    SPECINT_TRACE_LEN,
};
