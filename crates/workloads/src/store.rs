//! A shared, thread-safe trace library.
//!
//! Every experiment binary needs traces for the same fifteen workloads, and
//! before this module each one re-ran the interpreter from scratch — the
//! dominant cost of the whole experiment suite. [`TraceStore`] memoizes
//! traces behind `Arc`s keyed by `(workload, input, len)` so each trace is
//! generated **exactly once per process**, no matter how many experiments
//! (or threads) request it. With a cache directory configured, traces are
//! also persisted in the existing `BPTR` binary format so they are generated
//! at most once per machine.
//!
//! The per-process singleton is [`TraceStore::global`]; workloads reach it
//! through [`crate::WorkloadSpec::cached_trace`]. Set `BRANCH_LAB_TRACE_DIR`
//! to enable the on-disk layer for the global store.
//!
//! # Memory governor
//!
//! Long multi-study runs accumulate every workload's trace in memory.
//! Setting `BRANCH_LAB_MEM_BUDGET` (bytes, with optional `K`/`M`/`G`
//! suffix) caps the store's resident trace bytes: after each request the
//! least-recently-used entries are dropped from the memoization map until
//! the store is back under budget (the most recent entry always stays, so
//! the trace in active use is never thrashed). Evicted traces reload from
//! the disk cache — or regenerate — on their next request, and
//! [`TraceStore::stream`] requests served block-wise from disk while a
//! budget is active are counted as degraded streams. Degradation trades
//! throughput for bounded memory; outputs are unaffected.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use bp_metrics::Counter;
use bp_trace::{
    BptrReader, ReadTraceError, RetiredInst, SharedReader, Trace, TraceMeta, TraceReader,
};

use crate::program::Program;
use crate::spec::WorkloadSpec;

/// Identity of one trace in the store.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TraceKey {
    /// Workload name, e.g. `"641.leela_s"`.
    pub name: String,
    /// Application input index.
    pub input: u32,
    /// Trace length in instructions.
    pub len: usize,
}

impl TraceKey {
    /// Builds a key for `spec` at (`input`, `len`).
    #[must_use]
    pub fn new(spec: &WorkloadSpec, input: u32, len: usize) -> Self {
        TraceKey { name: spec.name.clone(), input, len }
    }

    /// File name used by the on-disk layer, with path-hostile characters
    /// mapped to `_`.
    fn file_name(&self) -> String {
        let sanitized: String = self
            .name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '.' || c == '-' { c } else { '_' })
            .collect();
        format!("{sanitized}-i{}-l{}.bptr", self.input, self.len)
    }
}

/// Cumulative counters exposed for tests and diagnostics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Traces produced by running the interpreter.
    pub generated: u64,
    /// Traces satisfied from the on-disk cache.
    pub disk_loads: u64,
    /// Requests satisfied from memory (neither generated nor loaded).
    pub hits: u64,
    /// Cache files found torn/corrupt, quarantined as `.corrupt`, and
    /// regenerated.
    pub corrupt: u64,
    /// Valid cache files in an old `BPTR` format version, rewritten in
    /// the current (v3) format on load.
    pub upgraded: u64,
    /// In-memory entries dropped by the `BRANCH_LAB_MEM_BUDGET` governor.
    pub evicted: u64,
    /// [`TraceStore::stream`] requests served block-wise from disk while
    /// a memory budget was active (streaming degradation instead of
    /// materialization).
    pub degraded_streams: u64,
}

/// One memoization slot. The `OnceLock` guarantees exactly-once generation
/// per key even when several threads request the same trace concurrently,
/// without holding the store-wide map lock during generation.
type Slot = Arc<OnceLock<Arc<Trace>>>;

/// Thread-safe memoizing trace cache with optional `BPTR` persistence.
pub struct TraceStore {
    traces: Mutex<HashMap<TraceKey, Slot>>,
    /// Lowered programs, memoized per workload name: program structure is
    /// input-independent, so all inputs of a workload share one program.
    programs: Mutex<HashMap<String, Arc<Program>>>,
    cache_dir: Option<PathBuf>,
    /// Resident-byte cap for memoized traces; `None` disables eviction.
    budget: Option<u64>,
    /// Keys in least-recently-used order (front = coldest) with the
    /// resident byte size of each memoized trace. Only maintained when a
    /// budget is set.
    lru: Mutex<Vec<(TraceKey, u64)>>,
    resident_bytes: AtomicU64,
    generated: AtomicU64,
    disk_loads: AtomicU64,
    hits: AtomicU64,
    corrupt: AtomicU64,
    upgraded: AtomicU64,
    evicted: AtomicU64,
    degraded_streams: AtomicU64,
    /// `bp-metrics` mirrors of the stats above (no-ops unless
    /// `BRANCH_LAB_METRICS` enables the registry).
    m_generated: Counter,
    m_disk_loads: Counter,
    m_hits: Counter,
    m_corrupt: Counter,
    m_evicted: Counter,
    m_degraded: Counter,
}

impl TraceStore {
    /// Creates an in-memory-only store.
    #[must_use]
    pub fn new() -> Self {
        TraceStore {
            traces: Mutex::new(HashMap::new()),
            programs: Mutex::new(HashMap::new()),
            cache_dir: None,
            budget: None,
            lru: Mutex::new(Vec::new()),
            resident_bytes: AtomicU64::new(0),
            generated: AtomicU64::new(0),
            disk_loads: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            upgraded: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            degraded_streams: AtomicU64::new(0),
            m_generated: Counter::get("trace_store.generate"),
            m_disk_loads: Counter::get("trace_store.disk_load"),
            m_hits: Counter::get("trace_store.hit"),
            m_corrupt: Counter::get("trace_store.corrupt"),
            m_evicted: Counter::get("trace_store.evict"),
            m_degraded: Counter::get("trace_store.degraded_stream"),
        }
    }

    /// Creates a store that additionally persists traces under `dir`
    /// (created on first write if missing).
    #[must_use]
    pub fn with_cache_dir(dir: impl Into<PathBuf>) -> Self {
        let mut s = TraceStore::new();
        s.cache_dir = Some(dir.into());
        s
    }

    /// Caps the store's resident memoized-trace bytes (the memory
    /// governor); least-recently-used entries are evicted past the cap.
    #[must_use]
    pub fn with_mem_budget(mut self, bytes: u64) -> Self {
        self.budget = Some(bytes);
        self
    }

    /// The per-process shared store. Reads `BRANCH_LAB_TRACE_DIR` and
    /// `BRANCH_LAB_MEM_BUDGET` once, at first use: when set and
    /// non-empty, the global store persists traces in the former and
    /// bounds resident trace memory to the latter.
    pub fn global() -> &'static TraceStore {
        static GLOBAL: OnceLock<TraceStore> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let mut store = match std::env::var("BRANCH_LAB_TRACE_DIR") {
                Ok(dir) if !dir.is_empty() => TraceStore::with_cache_dir(dir),
                _ => TraceStore::new(),
            };
            if let Some(budget) =
                std::env::var("BRANCH_LAB_MEM_BUDGET").ok().as_deref().and_then(parse_budget)
            {
                store = store.with_mem_budget(budget);
            }
            store
        })
    }

    /// Returns the trace for `spec` at (`input`, `len`), generating it (or
    /// loading it from the cache directory) only if no prior request did.
    ///
    /// # Panics
    ///
    /// Panics if `input >= spec.inputs`, mirroring [`WorkloadSpec::trace`].
    pub fn get(&self, spec: &WorkloadSpec, input: u32, len: usize) -> Arc<Trace> {
        assert!(
            input < spec.inputs,
            "input {input} out of range: {} declares {} inputs",
            spec.name,
            spec.inputs
        );
        let key = TraceKey::new(spec, input, len);
        // Map locks recover from poisoning: the guarded maps are only
        // ever inserted into, so a panicked holder cannot leave them in
        // an inconsistent state, and one dead worker must not wedge every
        // later trace request.
        let slot = {
            let mut map = self.traces.lock().unwrap_or_else(PoisonError::into_inner);
            Arc::clone(map.entry(key.clone()).or_default())
        };
        if let Some(t) = slot.get() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.m_hits.incr();
            self.note_use(&key, t);
            return Arc::clone(t);
        }
        let t = Arc::clone(slot.get_or_init(|| Arc::new(self.load_or_generate(spec, &key))));
        self.note_use(&key, &t);
        t
    }

    /// Records that `key` is resident and was just used; under a memory
    /// budget, evicts the coldest entries until the store fits. The entry
    /// just used is never evicted, so the trace in active use cannot
    /// thrash even when it alone exceeds the budget.
    fn note_use(&self, key: &TraceKey, trace: &Arc<Trace>) {
        let Some(budget) = self.budget else { return };
        let bytes = (trace.len() * std::mem::size_of::<RetiredInst>()) as u64;
        let mut cold = Vec::new();
        {
            let mut lru = self.lru.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(pos) = lru.iter().position(|(k, _)| k == key) {
                let entry = lru.remove(pos);
                lru.push(entry);
            } else {
                lru.push((key.clone(), bytes));
                self.resident_bytes.fetch_add(bytes, Ordering::Relaxed);
            }
            while self.resident_bytes.load(Ordering::Relaxed) > budget && lru.len() > 1 {
                let (k, b) = lru.remove(0);
                self.resident_bytes.fetch_sub(b, Ordering::Relaxed);
                cold.push(k);
            }
        }
        if !cold.is_empty() {
            let mut map = self.traces.lock().unwrap_or_else(PoisonError::into_inner);
            for k in &cold {
                // Dropping the slot releases the store's Arc; callers
                // already holding the trace keep it alive until they
                // finish. The next request reloads from disk (or
                // regenerates).
                map.remove(k);
                self.evicted.fetch_add(1, Ordering::Relaxed);
                self.m_evicted.incr();
            }
        }
    }

    fn load_or_generate(&self, spec: &WorkloadSpec, key: &TraceKey) -> Trace {
        if let Some(dir) = &self.cache_dir {
            let path = dir.join(key.file_name());
            match bp_metrics::time("trace_store.disk_load", || load_valid(&path, key)) {
                DiskRead::Valid(t, version) => {
                    self.disk_loads.fetch_add(1, Ordering::Relaxed);
                    self.m_disk_loads.incr();
                    if version < CURRENT_FORMAT_VERSION {
                        // Format-version cache invalidation: rewrite
                        // old-format entries in the current codec so the
                        // disk library converges on v3 (smaller files,
                        // block-wise streaming). Best-effort, like every
                        // other persistence write.
                        if !bp_metrics::faultpoint::should_fail("trace_store.save")
                            && t.save(&path).is_ok()
                        {
                            self.upgraded.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    return t;
                }
                DiskRead::Corrupt(reason) => {
                    self.corrupt.fetch_add(1, Ordering::Relaxed);
                    self.m_corrupt.incr();
                    quarantine(&path, &reason);
                }
                DiskRead::Missing => {}
            }
        }
        let program = self.program(spec);
        let trace = bp_metrics::time("trace_store.generate", || {
            spec.trace_with(&program, key.input, key.len)
        });
        self.generated.fetch_add(1, Ordering::Relaxed);
        self.m_generated.incr();
        if let Some(dir) = &self.cache_dir {
            // Persistence is best-effort: a full disk or read-only cache
            // directory must not fail the experiment. The fault site lets
            // tests exercise exactly that degradation.
            let persist_ok = !bp_metrics::faultpoint::should_fail("trace_store.save")
                && std::fs::create_dir_all(dir).is_ok();
            if persist_ok {
                let _ = trace.save(dir.join(key.file_name()));
            }
        }
        trace
    }

    /// Returns the lowered program for `spec`, building it at most once per
    /// workload name.
    pub fn program(&self, spec: &WorkloadSpec) -> Arc<Program> {
        let mut map = self.programs.lock().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(
            map.entry(spec.name.clone()).or_insert_with(|| Arc::new(spec.program())),
        )
    }

    /// Returns a streaming reader over the trace for `spec` at
    /// (`input`, `len`) without requiring it in memory.
    ///
    /// When the on-disk cache holds a matching file, records stream
    /// block-by-block from disk — peak memory stays bounded by one codec
    /// block no matter how long the trace is. Otherwise the trace is
    /// obtained via [`TraceStore::get`] (generating and persisting it as
    /// usual) and streamed from memory. Corruption in a disk-streamed
    /// file surfaces as a [`ReadTraceError`] from the reader's
    /// `next_chunk`, exactly like reading the file directly.
    ///
    /// # Panics
    ///
    /// Panics if `input >= spec.inputs`, mirroring [`TraceStore::get`].
    pub fn stream(&self, spec: &WorkloadSpec, input: u32, len: usize) -> StoreReader {
        let key = TraceKey::new(spec, input, len);
        // Already resident? Share it — no disk I/O, no second copy.
        let resident = {
            let map = self.traces.lock().unwrap_or_else(PoisonError::into_inner);
            map.get(&key).and_then(|slot| slot.get().cloned())
        };
        if let Some(t) = resident {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.m_hits.incr();
            return StoreReader::Mem(SharedReader::new(t));
        }
        if let Some(dir) = &self.cache_dir {
            let path = dir.join(key.file_name());
            if !bp_metrics::faultpoint::should_fail("trace_store.load") {
                if let Ok(r) = Trace::open(&path) {
                    let meta = r.meta();
                    if meta.name == key.name
                        && meta.input == key.input
                        && r.len_hint() == Some(key.len as u64)
                    {
                        self.disk_loads.fetch_add(1, Ordering::Relaxed);
                        self.m_disk_loads.incr();
                        if self.budget.is_some() {
                            // Streaming degradation: under a memory
                            // budget this block-wise read replaces a
                            // would-be materialization.
                            self.degraded_streams.fetch_add(1, Ordering::Relaxed);
                            self.m_degraded.incr();
                        }
                        return StoreReader::Disk(Box::new(r));
                    }
                }
            }
            // Missing, unreadable, or wrong identity: fall through to the
            // materializing path, which quarantines/regenerates properly.
        }
        StoreReader::Mem(SharedReader::new(self.get(spec, input, len)))
    }

    /// Current counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            generated: self.generated.load(Ordering::Relaxed),
            disk_loads: self.disk_loads.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            upgraded: self.upgraded.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            degraded_streams: self.degraded_streams.load(Ordering::Relaxed),
        }
    }
}

/// The `BPTR` format version [`TraceStore`] persists; older valid cache
/// files are upgraded to it on load.
const CURRENT_FORMAT_VERSION: u16 = 3;

/// A [`TraceReader`] handed out by [`TraceStore::stream`]: block-wise
/// disk decode when the cache holds the trace, shared memory otherwise.
pub enum StoreReader {
    /// Streaming straight from the on-disk cache file.
    Disk(Box<BptrReader<std::io::BufReader<std::fs::File>>>),
    /// Streaming a memoized in-memory trace.
    Mem(SharedReader),
}

impl TraceReader for StoreReader {
    fn meta(&self) -> &TraceMeta {
        match self {
            StoreReader::Disk(r) => r.meta(),
            StoreReader::Mem(r) => r.meta(),
        }
    }

    fn len_hint(&self) -> Option<u64> {
        match self {
            StoreReader::Disk(r) => r.len_hint(),
            StoreReader::Mem(r) => r.len_hint(),
        }
    }

    fn next_chunk(&mut self) -> Result<Option<&[RetiredInst]>, ReadTraceError> {
        match self {
            StoreReader::Disk(r) => r.next_chunk(),
            StoreReader::Mem(r) => r.next_chunk(),
        }
    }
}

impl Default for TraceStore {
    fn default() -> Self {
        TraceStore::new()
    }
}

/// Outcome of probing the on-disk cache for one key.
enum DiskRead {
    /// A complete, checksum-verified trace matching the key, and the
    /// `BPTR` format version it was stored in.
    Valid(Trace, u16),
    /// No cache file (the ordinary cold-cache case).
    Missing,
    /// A file exists but is torn, corrupt, or carries the wrong identity;
    /// it must be quarantined and the trace regenerated.
    Corrupt(String),
}

/// Loads `path` and validates it against `key`.
///
/// The `trace_store.load` fault site simulates a corrupt read without a
/// corrupt file, so degradation tests don't have to produce real torn
/// writes.
fn load_valid(path: &Path, key: &TraceKey) -> DiskRead {
    if bp_metrics::faultpoint::should_fail("trace_store.load") {
        return DiskRead::Corrupt("injected fault: trace_store.load".to_string());
    }
    let mut reader = match Trace::open(path) {
        Ok(r) => r,
        Err(ReadTraceError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
            return DiskRead::Missing;
        }
        // Anything else — truncation (unexpected EOF), bad magic, bad
        // field encodings, checksum mismatch — is a damaged cache entry.
        Err(e) => return DiskRead::Corrupt(e.to_string()),
    };
    // Reject a wrong-identity header before decoding a single record.
    if reader.meta().name != key.name || reader.meta().input != key.input {
        return DiskRead::Corrupt(format!(
            "cache identity mismatch: file holds {}/i{}, key wants {}/i{}",
            reader.meta().name,
            reader.meta().input,
            key.name,
            key.input
        ));
    }
    let version = reader.version();
    let mut t = Trace::with_capacity(reader.meta().clone(), key.len.min(1 << 20));
    loop {
        match reader.next_chunk() {
            Ok(Some(chunk)) => t.extend(chunk.iter().copied()),
            Ok(None) => break,
            Err(e) => return DiskRead::Corrupt(e.to_string()),
        }
        if t.len() > key.len {
            break; // Longer than the key says: identity mismatch below.
        }
    }
    if t.len() == key.len {
        DiskRead::Valid(t, version)
    } else {
        DiskRead::Corrupt(format!(
            "cache length mismatch: file holds {} records, key wants {}",
            t.len(),
            key.len
        ))
    }
}

/// Parses a `BRANCH_LAB_MEM_BUDGET` value: a byte count with an optional
/// `K`/`M`/`G` (case-insensitive, 1024-based) suffix. Returns `None` for
/// anything unparsable or zero.
fn parse_budget(raw: &str) -> Option<u64> {
    let raw = raw.trim();
    let (digits, shift) = match raw.chars().last()? {
        'k' | 'K' => (&raw[..raw.len() - 1], 10u32),
        'm' | 'M' => (&raw[..raw.len() - 1], 20),
        'g' | 'G' => (&raw[..raw.len() - 1], 30),
        _ => (raw, 0),
    };
    let n: u64 = digits.trim().parse().ok()?;
    n.checked_shl(shift).filter(|&b| b > 0)
}

/// Most recent quarantine files kept per cache directory; older evidence
/// beyond this is pruned.
const QUARANTINE_KEEP: usize = 8;

/// Moves a damaged cache file aside as `<name>.corrupt-<n>` — with `n`
/// picked so the name is fresh, so repeated corruption of the same key
/// never clobbers earlier evidence — then prunes the directory's oldest
/// quarantine files beyond [`QUARANTINE_KEEP`]. Renaming within a
/// directory is atomic, so a concurrent reader sees the original file or
/// no file — never a half-moved one. Best-effort: if even the rename
/// fails, the file is removed so it cannot poison the next run.
fn quarantine(path: &Path, reason: &str) {
    let fresh_name = (1u32..10_000).map(|n| {
        let mut q = path.as_os_str().to_owned();
        q.push(format!(".corrupt-{n}"));
        PathBuf::from(q)
    });
    let target = fresh_name.into_iter().find(|p| !p.exists());
    let renamed = target.is_some_and(|t| std::fs::rename(path, &t).is_ok());
    if !renamed {
        let _ = std::fs::remove_file(path);
    }
    eprintln!(
        "branch-lab: quarantined corrupt trace cache file {} ({reason}); regenerating",
        path.display()
    );
    if let Some(dir) = path.parent() {
        prune_quarantine(dir);
    }
}

/// Deletes the oldest (by modification time, then name) quarantine files
/// in `dir` beyond [`QUARANTINE_KEEP`]. Best-effort throughout: pruning
/// exists to bound disk growth, not to guarantee an exact census.
fn prune_quarantine(dir: &Path) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let mut quarantined: Vec<(std::time::SystemTime, PathBuf)> = entries
        .flatten()
        .filter_map(|e| {
            let p = e.path();
            let name = p.file_name()?.to_str()?;
            if !name.contains(".corrupt") {
                return None;
            }
            let mtime =
                e.metadata().and_then(|m| m.modified()).unwrap_or(std::time::SystemTime::UNIX_EPOCH);
            Some((mtime, p))
        })
        .collect();
    if quarantined.len() <= QUARANTINE_KEEP {
        return;
    }
    quarantined.sort();
    let excess = quarantined.len() - QUARANTINE_KEEP;
    for (_, p) in quarantined.into_iter().take(excess) {
        let _ = std::fs::remove_file(p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::specint_suite;

    fn spec() -> WorkloadSpec {
        specint_suite()[0].clone()
    }

    #[test]
    fn repeated_gets_generate_once() {
        let store = TraceStore::new();
        let s = spec();
        let a = store.get(&s, 0, 2_000);
        let b = store.get(&s, 0, 2_000);
        assert!(Arc::ptr_eq(&a, &b));
        let stats = store.stats();
        assert_eq!(stats.generated, 1);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn distinct_keys_are_distinct_traces() {
        let store = TraceStore::new();
        let s = spec();
        let a = store.get(&s, 0, 1_000);
        let b = store.get(&s, 1, 1_000);
        let c = store.get(&s, 0, 2_000);
        assert_ne!(a.insts(), b.insts());
        assert_ne!(a.len(), c.len());
        assert_eq!(store.stats().generated, 3);
    }

    #[test]
    fn store_matches_direct_generation() {
        let store = TraceStore::new();
        let s = spec();
        let cached = store.get(&s, 1, 3_000);
        let direct = s.trace(1, 3_000);
        assert_eq!(cached.insts(), direct.insts());
        assert_eq!(cached.meta(), direct.meta());
    }

    #[test]
    fn concurrent_gets_generate_once() {
        let store = TraceStore::new();
        let s = spec();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| store.get(&s, 0, 2_000));
            }
        });
        assert_eq!(store.stats().generated, 1);
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "bp_store_{tag}_{}_{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    #[test]
    fn old_format_cache_files_are_upgraded_to_v3_on_load() {
        let dir = scratch_dir("upgrade");
        let s = spec();
        let key = TraceKey::new(&s, 0, 2_000);
        let path = dir.join(key.file_name());

        // Seed the cache with a legacy v2 file, as a pre-v3 run would
        // have left behind.
        let direct = s.trace(0, 2_000);
        let mut bytes = Vec::new();
        direct.write_to_v2(&mut bytes).expect("v2 encode");
        std::fs::write(&path, &bytes).expect("seed v2 cache file");

        let store = TraceStore::with_cache_dir(&dir);
        let t = store.get(&s, 0, 2_000);
        assert_eq!(t.insts(), direct.insts());
        let stats = store.stats();
        assert_eq!(stats.disk_loads, 1, "{stats:?}");
        assert_eq!(stats.generated, 0, "{stats:?}");
        assert_eq!(stats.upgraded, 1, "{stats:?}");

        // The file on disk is now the current format and still valid.
        let reader = Trace::open(&path).expect("reopen upgraded file");
        assert_eq!(reader.version(), CURRENT_FORMAT_VERSION);
        assert_eq!(Trace::load(&path).expect("load upgraded").insts(), direct.insts());

        // A second store just disk-loads it; no further upgrade.
        let again = TraceStore::with_cache_dir(&dir);
        let _ = again.get(&s, 0, 2_000);
        assert_eq!(again.stats().upgraded, 0, "{:?}", again.stats());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stream_serves_from_disk_without_materializing() {
        let dir = scratch_dir("stream");
        let s = spec();
        let good = TraceStore::with_cache_dir(&dir).get(&s, 0, 2_000);

        // A fresh store: the trace is on disk but not in memory, so the
        // stream must come straight from the cache file.
        let store = TraceStore::with_cache_dir(&dir);
        let mut r = store.stream(&s, 0, 2_000);
        assert!(matches!(r, StoreReader::Disk(_)));
        assert_eq!(r.len_hint(), Some(2_000));
        let mut streamed = Vec::new();
        while let Some(chunk) = r.next_chunk().expect("stream") {
            streamed.extend_from_slice(chunk);
        }
        assert_eq!(streamed, good.insts());
        assert_eq!(store.stats().disk_loads, 1);
        assert_eq!(store.stats().generated, 0);

        // Once resident in memory, streaming shares rather than re-reads.
        let _ = store.get(&s, 0, 2_000);
        let r = store.stream(&s, 0, 2_000);
        assert!(matches!(r, StoreReader::Mem(_)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stream_without_cache_dir_generates_and_shares() {
        let store = TraceStore::new();
        let s = spec();
        let mut r = store.stream(&s, 1, 1_500);
        assert!(matches!(r, StoreReader::Mem(_)));
        let chunk = r.next_chunk().expect("chunk").expect("records").to_vec();
        assert_eq!(chunk.len(), 1_500);
        assert_eq!(chunk, store.get(&s, 1, 1_500).insts());
        assert_eq!(store.stats().generated, 1);
    }

    #[test]
    fn programs_are_shared() {
        let store = TraceStore::new();
        let s = spec();
        let a = store.program(&s);
        let b = store.program(&s);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn budget_parser_accepts_suffixes_and_rejects_garbage() {
        assert_eq!(parse_budget("1024"), Some(1024));
        assert_eq!(parse_budget("4K"), Some(4 << 10));
        assert_eq!(parse_budget(" 16m "), Some(16 << 20));
        assert_eq!(parse_budget("2G"), Some(2 << 30));
        assert_eq!(parse_budget("0"), None);
        assert_eq!(parse_budget(""), None);
        assert_eq!(parse_budget("lots"), None);
        assert_eq!(parse_budget("-5M"), None);
    }

    #[test]
    fn mem_budget_evicts_cold_entries_but_never_the_current_one() {
        // Each 2000-inst trace is ~2000 × size_of::<RetiredInst>() bytes;
        // budget one-and-a-half traces so a second resident always evicts
        // the first.
        let one = (2_000 * std::mem::size_of::<RetiredInst>()) as u64;
        let store = TraceStore::new().with_mem_budget(one * 3 / 2);
        let s = spec();
        let a = store.get(&s, 0, 2_000);
        assert_eq!(store.stats().evicted, 0);
        let _b = store.get(&s, 1, 2_000); // over budget: input 0 evicted
        assert_eq!(store.stats().evicted, 1);
        // Caller-held Arcs survive eviction.
        assert_eq!(a.len(), 2_000);
        // Re-requesting input 0 regenerates (no cache dir) and in turn
        // evicts input 1.
        let _a2 = store.get(&s, 0, 2_000);
        let stats = store.stats();
        assert_eq!(stats.generated, 3, "{stats:?}");
        assert_eq!(stats.evicted, 2, "{stats:?}");

        // A budget smaller than a single trace keeps exactly the entry
        // in use: repeated gets of the *same* key still hit.
        let tiny = TraceStore::new().with_mem_budget(8);
        let x = tiny.get(&s, 0, 1_000);
        let y = tiny.get(&s, 0, 1_000);
        assert!(Arc::ptr_eq(&x, &y));
        assert_eq!(tiny.stats().evicted, 0);
    }

    #[test]
    fn budgeted_disk_streams_count_as_degraded() {
        let dir = scratch_dir("degraded");
        let s = spec();
        let _seed = TraceStore::with_cache_dir(&dir).get(&s, 0, 2_000);

        let store = TraceStore::with_cache_dir(&dir).with_mem_budget(1 << 20);
        let r = store.stream(&s, 0, 2_000);
        assert!(matches!(r, StoreReader::Disk(_)));
        assert_eq!(store.stats().degraded_streams, 1);

        // Without a budget the same disk stream is not "degraded".
        let plain = TraceStore::with_cache_dir(&dir);
        let r = plain.stream(&s, 0, 2_000);
        assert!(matches!(r, StoreReader::Disk(_)));
        assert_eq!(plain.stats().degraded_streams, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn repeated_quarantines_keep_distinct_evidence_up_to_the_cap() {
        let dir = scratch_dir("quarantine");
        let victim = dir.join("w-i0-l100.bptr");
        for round in 1..=(QUARANTINE_KEEP + 3) {
            std::fs::write(&victim, format!("garbage {round}")).unwrap();
            quarantine(&victim, "unit test");
            assert!(!victim.exists(), "original must be moved aside");
        }
        let quarantined: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.contains(".corrupt"))
            .collect();
        assert_eq!(
            quarantined.len(),
            QUARANTINE_KEEP,
            "retention is capped: {quarantined:?}"
        );
        let unique: std::collections::HashSet<&String> = quarantined.iter().collect();
        assert_eq!(unique.len(), quarantined.len(), "names never clobber each other");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
