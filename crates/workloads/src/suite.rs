//! The two benchmark suites used throughout the paper.
//!
//! [`specint_suite`] mirrors the nine SPECint 2017 benchmarks of Table I
//! (excluding `603.gcc_s`, which the paper moves to the LCF dataset);
//! [`lcf_suite`] mirrors the six large-code-footprint applications of
//! Table II. Parameters are tuned so that the *qualitative* per-workload
//! profile holds: relative accuracy ordering, H2P density, static branch
//! footprint, and rare-branch skew. Absolute values are scaled to
//! laptop-size traces (see `DESIGN.md`).

use crate::motifs::{RareTier, VarGapSpec};
use crate::spec::{Family, MotifSet, WorkloadSpec};

/// Convenience constructor for a variable-gap H2P spec.
fn vg(dep_bias_pct: u8, gap_max: u8, noise_bias_pct: u8) -> VarGapSpec {
    VarGapSpec {
        dep_bias_pct,
        gap_max,
        noise_bias_pct,
    }
}

/// Convenience constructor for a rare tier.
fn tier(pockets: u32, branches_per_pocket: u32, bias_min_pct: u8, bias_max_pct: u8) -> RareTier {
    RareTier {
        pockets,
        branches_per_pocket,
        bias_min_pct,
        bias_max_pct,
        polarized: false,
    }
}

/// A polarized tier: per-branch biases cluster at the range ends.
fn tier_pol(pockets: u32, branches_per_pocket: u32, bias_min_pct: u8, bias_max_pct: u8) -> RareTier {
    RareTier {
        polarized: true,
        ..tier(pockets, branches_per_pocket, bias_min_pct, bias_max_pct)
    }
}

/// Default trace length for SPECint-like workloads.
pub const SPECINT_TRACE_LEN: usize = 2_000_000;

/// Default trace length for LCF-like workloads.
pub const LCF_TRACE_LEN: usize = 2_000_000;

/// Memory-behaviour profile of a workload: data footprint (log2 words) and
/// serial pointer-chase depth per iteration. Memory-bound benchmarks
/// (mcf-like) get large footprints and deep chases, so branch misprediction
/// stalls partially hide under memory stalls — as on real hardware.
#[derive(Clone, Copy)]
struct MemProfile {
    words_log2: u32,
    chase_hops: u32,
}

/// Cache-resident working set, light chase.
const MEM_LIGHT: MemProfile = MemProfile { words_log2: 14, chase_hops: 2 };
/// L2-resident working set.
const MEM_MID: MemProfile = MemProfile { words_log2: 16, chase_hops: 3 };
/// DRAM-visiting working set, deep pointer chasing.
const MEM_HEAVY: MemProfile = MemProfile { words_log2: 18, chase_hops: 4 };

fn spec(
    name: &str,
    inputs: u32,
    phases: u32,
    mem: MemProfile,
    common: MotifSet,
    per_phase: MotifSet,
) -> WorkloadSpec {
    let common = MotifSet {
        pointer_chase_hops: mem.chase_hops,
        ..common
    };
    WorkloadSpec {
        name: name.to_owned(),
        family: Family::SpecInt,
        inputs,
        mem_words_log2: mem.words_log2,
        phases,
        phase_shift: 9,
        common,
        per_phase,
        default_trace_len: SPECINT_TRACE_LEN,
    }
}

fn lcf(name: &str, phases: u32, mem: MemProfile, common: MotifSet, per_phase: MotifSet) -> WorkloadSpec {
    let common = MotifSet {
        pointer_chase_hops: mem.chase_hops,
        ..common
    };
    WorkloadSpec {
        name: name.to_owned(),
        family: Family::Lcf,
        inputs: 1,
        mem_words_log2: mem.words_log2,
        phases,
        phase_shift: 8,
        common,
        per_phase,
        default_trace_len: LCF_TRACE_LEN,
    }
}

/// The nine SPECint-2017-like benchmarks of Table I.
///
/// # Examples
///
/// ```
/// let suite = bp_workloads::specint_suite();
/// assert_eq!(suite.len(), 9);
/// assert!(suite.iter().any(|s| s.name.contains("leela")));
/// ```
#[must_use]
pub fn specint_suite() -> Vec<WorkloadSpec> {
    vec![
        // Highly predictable overall; a single weak H2P; large-ish static
        // footprint from a well-biased rare tier.
        spec(
            "600.perlbench_s",
            4,
            6,
            MEM_LIGHT,
            MotifSet {
                constant_chain: 6,
                correlated_pairs: 2,
                fixed_loops: vec![8],
                nested_imli: vec![(3, 6)],
                data_dep_h2ps: vec![92],
                rare_tiers: vec![tier(600, 2, 70, 96)],
                ..MotifSet::default()
            },
            MotifSet {
                constant_chain: 4,
                fixed_loops: vec![12, 6],
                nested_imli: vec![(4, 6)],
                var_gap_h2ps: vec![vg(80, 4, 88)],
                ..MotifSet::default()
            },
        ),
        // H2P-dominated: almost all mispredictions come from a handful of
        // systematic H2Ps; tiny static footprint.
        spec(
            "605.mcf_s",
            8,
            11,
            MEM_HEAVY,
            MotifSet {
                constant_chain: 4,
                correlated_pairs: 1,
                nested_imli: vec![(2, 6)],
                data_dep_h2ps: vec![62],
                var_gap_h2ps: vec![vg(60, 8, 75)],
                rare_tiers: vec![tier(80, 1, 88, 97)],
                ..MotifSet::default()
            },
            MotifSet {
                constant_chain: 2,
                fixed_loops: vec![6],
                var_gap_h2ps: vec![vg(66, 6, 80)],
                data_dep_h2ps: vec![55],
                ..MotifSet::default()
            },
        ),
        spec(
            "620.omnetpp_s",
            5,
            12,
            MEM_MID,
            MotifSet {
                constant_chain: 6,
                correlated_pairs: 2,
                fixed_loops: vec![10],
                data_dep_h2ps: vec![85],
                rare_tiers: vec![tier(400, 2, 72, 95)],
                ..MotifSet::default()
            },
            MotifSet {
                constant_chain: 3,
                fixed_loops: vec![8],
                nested_imli: vec![(3, 5)],
                var_gap_h2ps: vec![vg(70, 6, 82)],
                data_dep_h2ps: vec![78],
                ..MotifSet::default()
            },
        ),
        // Most predictable benchmark of the suite (0.997 in the paper):
        // big predictable nests and only high-bias H2Ps.
        spec(
            "623.xalancbmk_s",
            4,
            7,
            MEM_LIGHT,
            MotifSet {
                constant_chain: 8,
                correlated_pairs: 2,
                nested_imli: vec![(6, 10)],
                data_dep_h2ps: vec![97],
                rare_tiers: vec![tier(500, 2, 82, 98)],
                ..MotifSet::default()
            },
            MotifSet {
                constant_chain: 6,
                fixed_loops: vec![16],
                nested_imli: vec![(4, 8)],
                var_gap_h2ps: vec![vg(92, 4, 94)],
                ..MotifSet::default()
            },
        ),
        // One strong H2P per slice that nevertheless owns over half the
        // mispredictions; mid accuracy from loop-exit noise.
        spec(
            "625.x264_s",
            14,
            14,
            MEM_LIGHT,
            MotifSet {
                constant_chain: 5,
                correlated_pairs: 1,
                fixed_loops: vec![5, 9],
                rare_tiers: vec![tier(300, 2, 70, 94)],
                ..MotifSet::default()
            },
            MotifSet {
                constant_chain: 3,
                fixed_loops: vec![7],
                data_dep_h2ps: vec![53],
                ..MotifSet::default()
            },
        ),
        spec(
            "631.deepsjeng_s",
            12,
            9,
            MEM_LIGHT,
            MotifSet {
                constant_chain: 5,
                correlated_pairs: 2,
                fixed_loops: vec![8],
                nested_imli: vec![(2, 5)],
                data_dep_h2ps: vec![80],
                rare_tiers: vec![tier(350, 2, 65, 92)],
                ..MotifSet::default()
            },
            MotifSet {
                constant_chain: 3,
                fixed_loops: vec![10],
                var_gap_h2ps: vec![vg(72, 5, 80)],
                data_dep_h2ps: vec![75, 68],
                ..MotifSet::default()
            },
        ),
        // The H2P-richest benchmark (0.880 in the paper, 34 H2Ps/slice).
        spec(
            "641.leela_s",
            10,
            9,
            MEM_LIGHT,
            MotifSet {
                constant_chain: 3,
                correlated_pairs: 1,
                nested_imli: vec![(2, 5)],
                data_dep_h2ps: vec![60, 70],
                var_gap_h2ps: vec![vg(62, 7, 78)],
                rare_tiers: vec![tier(150, 1, 60, 90)],
                ..MotifSet::default()
            },
            MotifSet {
                constant_chain: 2,
                fixed_loops: vec![5],
                var_gap_h2ps: vec![vg(65, 6, 75), vg(58, 5, 82)],
                data_dep_h2ps: vec![64, 72],
                ..MotifSet::default()
            },
        ),
        spec(
            "648.exchange2_s",
            5,
            8,
            MEM_LIGHT,
            MotifSet {
                constant_chain: 6,
                correlated_pairs: 2,
                fixed_loops: vec![12],
                nested_imli: vec![(5, 5)],
                data_dep_h2ps: vec![90],
                rare_tiers: vec![tier(450, 2, 75, 96)],
                ..MotifSet::default()
            },
            MotifSet {
                constant_chain: 4,
                fixed_loops: vec![9],
                var_gap_h2ps: vec![vg(84, 5, 90)],
                ..MotifSet::default()
            },
        ),
        spec(
            "657.xz_s",
            5,
            8,
            MEM_MID,
            MotifSet {
                constant_chain: 4,
                correlated_pairs: 1,
                fixed_loops: vec![6],
                data_dep_h2ps: vec![66],
                var_gap_h2ps: vec![vg(64, 7, 76)],
                rare_tiers: vec![tier(120, 1, 80, 95)],
                ..MotifSet::default()
            },
            MotifSet {
                constant_chain: 2,
                fixed_loops: vec![7],
                var_gap_h2ps: vec![vg(68, 6, 78)],
                data_dep_h2ps: vec![62],
                ..MotifSet::default()
            },
        ),
    ]
}

/// The six large-code-footprint applications of Table II.
///
/// # Examples
///
/// ```
/// let suite = bp_workloads::lcf_suite();
/// assert_eq!(suite.len(), 6);
/// assert!(suite.iter().all(|s| s.family == bp_workloads::Family::Lcf));
/// ```
#[must_use]
pub fn lcf_suite() -> Vec<WorkloadSpec> {
    vec![
        // gcc: largest SPEC footprint; decent accuracy, some H2Ps.
        lcf(
            "602.gcc_s",
            6,
            MEM_MID,
            MotifSet {
                constant_chain: 5,
                correlated_pairs: 1,
                fixed_loops: vec![6],
                data_dep_h2ps: vec![74],
                var_gap_h2ps: vec![vg(70, 5, 80)],
                rare_tiers: vec![tier(16, 2, 60, 92), tier_pol(250, 12, 6, 95), tier(3000, 2, 60, 93), tier(1500, 2, 99, 100)],
                ..MotifSet::default()
            },
            MotifSet {
                constant_chain: 2,
                rare_tiers: vec![tier_pol(80, 4, 8, 94)],
                ..MotifSet::default()
            },
        ),
        // Game: the extreme rare-branch case — huge static footprint,
        // very few executions per branch, lowest accuracy.
        lcf(
            "game",
            8,
            MEM_HEAVY,
            MotifSet {
                constant_chain: 2,
                data_dep_h2ps: vec![55],
                rare_tiers: vec![tier(32, 2, 35, 75), tier_pol(300, 10, 12, 88), tier(4000, 3, 25, 80), tier(3500, 2, 99, 100)],
                ..MotifSet::default()
            },
            MotifSet {
                constant_chain: 1,
                rare_tiers: vec![tier_pol(150, 4, 14, 86)],
                ..MotifSet::default()
            },
        ),
        // RDBMS: large footprint, good accuracy, several H2Ps.
        lcf(
            "rdbms",
            6,
            MEM_MID,
            MotifSet {
                constant_chain: 5,
                correlated_pairs: 1,
                fixed_loops: vec![8],
                data_dep_h2ps: vec![80],
                var_gap_h2ps: vec![vg(75, 5, 85)],
                rare_tiers: vec![tier(24, 2, 70, 96), tier_pol(280, 10, 5, 97), tier(2500, 2, 68, 96), tier(1500, 2, 99, 100)],
                ..MotifSet::default()
            },
            MotifSet {
                constant_chain: 2,
                rare_tiers: vec![tier_pol(100, 4, 6, 96)],
                ..MotifSet::default()
            },
        ),
        // NoSQL database: best LCF accuracy, few H2Ps.
        lcf(
            "nosql",
            5,
            MEM_MID,
            MotifSet {
                constant_chain: 6,
                correlated_pairs: 2,
                fixed_loops: vec![10],
                data_dep_h2ps: vec![84],
                rare_tiers: vec![tier(16, 2, 75, 97), tier_pol(200, 8, 4, 98), tier(1200, 2, 72, 97), tier(800, 2, 99, 100)],
                ..MotifSet::default()
            },
            MotifSet {
                constant_chain: 2,
                rare_tiers: vec![tier_pol(60, 3, 5, 97)],
                ..MotifSet::default()
            },
        ),
        // Real-time analytics: mid accuracy, a handful of H2Ps.
        lcf(
            "rt-analytics",
            6,
            MEM_MID,
            MotifSet {
                constant_chain: 4,
                fixed_loops: vec![6],
                data_dep_h2ps: vec![68],
                var_gap_h2ps: vec![vg(66, 6, 78)],
                rare_tiers: vec![tier(16, 2, 50, 88), tier_pol(220, 9, 8, 92), tier(1000, 2, 50, 90), tier(700, 2, 99, 100)],
                ..MotifSet::default()
            },
            MotifSet {
                constant_chain: 2,
                rare_tiers: vec![tier_pol(70, 3, 10, 90)],
                ..MotifSet::default()
            },
        ),
        // Streaming server: smallest LCF footprint, hot branches with
        // mediocre biases (0.78 accuracy in the paper).
        lcf(
            "streaming",
            4,
            MEM_MID,
            MotifSet {
                constant_chain: 3,
                fixed_loops: vec![5],
                data_dep_h2ps: vec![60, 66],
                var_gap_h2ps: vec![vg(62, 6, 72)],
                rare_tiers: vec![tier(12, 3, 45, 82), tier_pol(120, 6, 12, 86), tier(300, 2, 45, 84), tier(250, 2, 99, 100)],
                ..MotifSet::default()
            },
            MotifSet {
                constant_chain: 1,
                rare_tiers: vec![tier_pol(30, 2, 14, 84)],
                ..MotifSet::default()
            },
        ),
    ]
}

/// Looks a workload up by name across both suites (SPECint first, then
/// LCF) — the CLI's `--workload` resolver.
///
/// # Examples
///
/// ```
/// assert!(bp_workloads::find_workload("641.leela_s").is_some());
/// assert!(bp_workloads::find_workload("game").is_some());
/// assert!(bp_workloads::find_workload("nope").is_none());
/// ```
#[must_use]
pub fn find_workload(name: &str) -> Option<WorkloadSpec> {
    specint_suite()
        .into_iter()
        .chain(lcf_suite())
        .find(|s| s.name == name)
}

/// Names of every workload, in suite order — what the CLI prints when a
/// `--workload` lookup fails.
#[must_use]
pub fn workload_names() -> Vec<String> {
    specint_suite()
        .into_iter()
        .chain(lcf_suite())
        .map(|s| s.name)
        .collect()
}

/// A content digest of every workload definition in both suites (FNV-1a
/// 64 over each spec's full parameter set, in suite order).
///
/// Traces are pure functions of `(workload spec, input, len)`, so this
/// digest stands in for the digest of every trace the suites can
/// produce: any change to a workload's generator parameters — motif
/// mix, phase structure, input count, memory size — changes the digest,
/// and therefore invalidates every cached study result derived from the
/// old traces (`branch-lab serve` folds it into its content-addressed
/// cache keys).
///
/// # Examples
///
/// ```
/// // Stable within a build.
/// assert_eq!(bp_workloads::suite_digest(), bp_workloads::suite_digest());
/// ```
#[must_use]
pub fn suite_digest() -> u64 {
    static DIGEST: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *DIGEST.get_or_init(|| {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for spec in specint_suite().iter().chain(lcf_suite().iter()) {
            // The derived Debug form covers every field of the spec
            // (including nested motif sets), so no parameter can change
            // without changing the digest.
            for b in format!("{spec:?}").bytes() {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            hash ^= 0xff;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_expected_membership() {
        let si = specint_suite();
        assert_eq!(si.len(), 9);
        assert!(si.iter().all(|s| s.family == Family::SpecInt));
        assert!(si.iter().all(|s| s.inputs >= 4));
        let lcf = lcf_suite();
        assert_eq!(lcf.len(), 6);
        assert!(lcf.iter().all(|s| s.family == Family::Lcf));
    }

    #[test]
    fn all_programs_lower_and_run() {
        for s in specint_suite().iter().chain(lcf_suite().iter()) {
            let p = s.program();
            assert!(p.static_cond_branch_count() > 10, "{}", s.name);
            let t = s.trace_with(&p, 0, 3_000);
            assert_eq!(t.len(), 3_000, "{}", s.name);
            assert!(t.conditional_branch_count() > 100, "{}", s.name);
        }
    }

    #[test]
    fn lcf_has_bigger_static_footprint_than_specint_median() {
        let si_max = specint_suite()
            .iter()
            .map(|s| s.program().static_cond_branch_count())
            .max()
            .unwrap();
        let game = lcf_suite()
            .iter()
            .find(|s| s.name == "game")
            .unwrap()
            .program()
            .static_cond_branch_count();
        assert!(
            game > si_max,
            "game ({game}) should exceed the SPECint max ({si_max})"
        );
    }

    #[test]
    fn workload_names_are_unique() {
        let mut names: Vec<String> = specint_suite()
            .iter()
            .chain(lcf_suite().iter())
            .map(|s| s.name.clone())
            .collect();
        names.sort();
        let n = names.len();
        names.dedup();
        assert_eq!(names.len(), n);
    }
}
