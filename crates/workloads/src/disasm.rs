//! Program disassembly — human-readable listings of generated programs,
//! for debugging workload generators and documenting planted behaviours.

use std::fmt;

use crate::program::{Block, BlockId, Op, Program, Terminator};

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Op::MovI { dst, imm } => write!(f, "movi  {dst}, {imm:#x}"),
            Op::Add { dst, a, b } => write!(f, "add   {dst}, {a}, {b}"),
            Op::Sub { dst, a, b } => write!(f, "sub   {dst}, {a}, {b}"),
            Op::Mul { dst, a, b } => write!(f, "mul   {dst}, {a}, {b}"),
            Op::Xor { dst, a, b } => write!(f, "xor   {dst}, {a}, {b}"),
            Op::And { dst, a, b } => write!(f, "and   {dst}, {a}, {b}"),
            Op::Or { dst, a, b } => write!(f, "or    {dst}, {a}, {b}"),
            Op::AddI { dst, a, imm } => write!(f, "addi  {dst}, {a}, {imm:#x}"),
            Op::MulI { dst, a, imm } => write!(f, "muli  {dst}, {a}, {imm:#x}"),
            Op::AndI { dst, a, imm } => write!(f, "andi  {dst}, {a}, {imm:#x}"),
            Op::Rem { dst, a, m } => write!(f, "rem   {dst}, {a}, {m}"),
            Op::ShrI { dst, a, sh } => write!(f, "shri  {dst}, {a}, {sh}"),
            Op::Load { dst, base, offset } => write!(f, "load  {dst}, [{base}+{offset:#x}]"),
            Op::Store { src, base, offset } => write!(f, "store [{base}+{offset:#x}], {src}"),
            Op::Nop => f.write_str("nop"),
        }
    }
}

impl fmt::Display for Terminator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Terminator::Br { cond, a, b, taken, fallthrough } => {
                write!(f, "br.{cond} {a}, {b} -> {taken} else {fallthrough}")
            }
            Terminator::BrI { cond, a, imm, taken, fallthrough } => {
                write!(f, "br.{cond} {a}, {imm} -> {taken} else {fallthrough}")
            }
            Terminator::Jmp(t) => write!(f, "jmp   {t}"),
            Terminator::Switch { index, targets } => {
                write!(f, "switch {index} over {} targets", targets.len())
            }
            Terminator::Call { callee, ret_to } => write!(f, "call  {callee} ret {ret_to}"),
            Terminator::Ret => f.write_str("ret"),
            Terminator::Halt => f.write_str("halt"),
        }
    }
}

impl Program {
    /// Disassembles one block with addresses and any annotations.
    #[must_use]
    pub fn disasm_block(&self, id: BlockId) -> String {
        use std::fmt::Write as _;
        let block: &Block = &self.blocks()[id.index()];
        let mut out = String::new();
        let labels: Vec<&str> = self
            .annotated_ips()
            .filter(|&(ip, _)| ip == self.term_addr(id))
            .map(|(_, l)| l)
            .collect();
        let _ = write!(out, "{id}:");
        if !labels.is_empty() {
            let _ = write!(out, "    ; {}", labels.join(", "));
        }
        out.push('\n');
        let base = self.block_addr(id);
        for (i, op) in block.insts.iter().enumerate() {
            let _ = writeln!(out, "  {:#08x}  {op}", base + 4 * i as u64);
        }
        let _ = writeln!(out, "  {:#08x}  {}", self.term_addr(id), block.term);
        out
    }

    /// Disassembles the whole program.
    #[must_use]
    pub fn disasm(&self) -> String {
        (0..self.blocks().len())
            .map(|i| self.disasm_block(BlockId::new_for_disasm(i)))
            .collect()
    }
}

impl BlockId {
    /// Internal helper for iteration in [`Program::disasm`].
    fn new_for_disasm(i: usize) -> Self {
        BlockId(u32::try_from(i).expect("block count fits u32"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;
    use bp_trace::{Cond, Reg};

    fn sample() -> Program {
        let mut b = ProgramBuilder::new();
        let e = b.block();
        let x = b.block();
        b.push(e, Op::MovI { dst: Reg::new(1), imm: 16 });
        b.push(e, Op::Load { dst: Reg::new(2), base: Reg::new(1), offset: 8 });
        b.term(
            e,
            Terminator::BrI {
                cond: Cond::Lt,
                a: Reg::new(2),
                imm: 50,
                taken: x,
                fallthrough: x,
            },
        );
        b.annotate(e, "dd-h2p");
        b.term(x, Terminator::Halt);
        b.finish(e, 8)
    }

    #[test]
    fn disasm_contains_addresses_ops_and_annotations() {
        let p = sample();
        let text = p.disasm();
        assert!(text.contains("bb0:"), "{text}");
        assert!(text.contains("; dd-h2p"), "{text}");
        assert!(text.contains("movi  r1, 0x10"), "{text}");
        assert!(text.contains("load  r2, [r1+0x8]"), "{text}");
        assert!(text.contains("br.lt r2, 50 -> bb1 else bb1"), "{text}");
        assert!(text.contains("halt"), "{text}");
    }

    #[test]
    fn suite_programs_disassemble() {
        let spec = &crate::suite::specint_suite()[1];
        let p = spec.program();
        let text = p.disasm();
        assert!(text.lines().count() > p.static_inst_count());
        assert!(text.contains("switch"));
        assert!(text.contains("; vg-h2p"));
    }

    #[test]
    fn op_display_roundtrips_visually() {
        let op = Op::Store { src: Reg::new(3), base: Reg::new(4), offset: 24 };
        assert_eq!(op.to_string(), "store [r4+0x18], r3");
        assert_eq!(Terminator::Ret.to_string(), "ret");
    }
}
