//! Workload specifications: parameterized synthetic benchmarks.
//!
//! A [`WorkloadSpec`] describes a benchmark's branch-behaviour composition
//! as counts of [motifs](crate::motifs). [`WorkloadSpec::program`] lowers
//! the spec into an executable [`Program`] whose structure — every static
//! branch IP — is identical across *application inputs*;
//! [`WorkloadSpec::trace`] then executes it with an input-specific data
//! memory, so branch dynamics vary per input exactly as the paper's
//! multi-input tracing methodology requires (§III-A).

use bp_trace::{Cond, Trace, TraceMeta};

use crate::interp::{Interpreter, SplitMix64};
use crate::motifs::{regs, Emitter, RareTier, VarGapSpec};
use crate::program::{BlockId, Op, Program, ProgramBuilder, Terminator};

/// Which dataset a workload belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Family {
    /// SPECint-2017-like: moderate code footprint, H2P-dominated.
    SpecInt,
    /// Large-code-footprint-like: rare-branch-dominated.
    Lcf,
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Family::SpecInt => f.write_str("specint"),
            Family::Lcf => f.write_str("lcf"),
        }
    }
}

/// A set of motif instances composing one code region.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MotifSet {
    /// Serial pointer-chase hops executed per visit (memory backbone).
    pub pointer_chase_hops: u32,
    /// Number of constant-direction branches.
    pub constant_chain: u32,
    /// Trip counts of fixed counted loops.
    pub fixed_loops: Vec<u32>,
    /// `(outer, inner)` trip counts of nested IMLI-style loop pairs.
    pub nested_imli: Vec<(u32, u32)>,
    /// Number of iteration-correlated branch pairs.
    pub correlated_pairs: u32,
    /// Variable-gap correlated H2P regions.
    pub var_gap_h2ps: Vec<VarGapSpec>,
    /// Taken-percentages of irreducible data-dependent H2Ps.
    pub data_dep_h2ps: Vec<u8>,
    /// Rare-pocket dispatch tiers.
    pub rare_tiers: Vec<RareTier>,
}

impl MotifSet {
    /// True if the set contains no motifs at all.
    #[must_use]
    pub fn is_trivial(&self) -> bool {
        *self == MotifSet::default()
    }
}

/// A complete synthetic benchmark description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Benchmark name, e.g. `"641.leela_s"`.
    pub name: String,
    /// Dataset family.
    pub family: Family,
    /// Number of distinct application inputs to trace (Table I's
    /// "# App. Inputs").
    pub inputs: u32,
    /// log2 of data-memory words.
    pub mem_words_log2: u32,
    /// Number of program phases. Phases execute disjoint motif sets,
    /// yielding SimPoint-style phase behaviour.
    pub phases: u32,
    /// Phase residence is `2^phase_shift` outer-loop iterations.
    pub phase_shift: u32,
    /// Motifs executed on every outer-loop iteration.
    pub common: MotifSet,
    /// Motifs instantiated once per phase (distinct static code per phase).
    pub per_phase: MotifSet,
    /// Default trace length in instructions for experiments.
    pub default_trace_len: usize,
}

impl WorkloadSpec {
    /// Deterministic structure seed derived from the workload name.
    fn structure_seed(&self) -> u64 {
        let mut h = SplitMix64::new(0xc0de);
        let mut acc = 0u64;
        for b in self.name.bytes() {
            acc = acc.rotate_left(8) ^ u64::from(b) ^ h.next();
        }
        acc
    }

    /// Deterministic data seed for one application input.
    #[must_use]
    pub fn input_seed(&self, input: u32) -> u64 {
        let mut h = SplitMix64::new(self.structure_seed() ^ (u64::from(input) << 32));
        h.next()
    }

    /// Lowers the spec into an executable program.
    ///
    /// The program structure depends only on the spec (not on any input),
    /// so static branch IPs are stable across inputs.
    #[must_use]
    pub fn program(&self) -> Program {
        let mut b = ProgramBuilder::new();
        let init = b.block();
        let head = b.block();
        let phase_dispatch = b.block();
        let tail = b.block();
        let halt = b.block();

        let seed = self.structure_seed();
        let mut e = Emitter::new(&mut b, seed);

        // Common segment, executed every iteration, ends at phase dispatch.
        let common_entry = emit_set(&mut e, &self.common, phase_dispatch);

        // Per-phase segments.
        let nphases = self.phases.max(1);
        let mut phase_entries = Vec::with_capacity(nphases as usize);
        for _ in 0..nphases {
            phase_entries.push(emit_set(&mut e, &self.per_phase, tail));
        }

        // init: X = constant, ZERO = 0 (registers already start at zero,
        // but make the intent explicit), then fall into the loop head.
        b.push(init, Op::MovI { dst: regs::X, imm: 0x9E37_79B9_7F4A_7C15 });
        b.push(init, Op::MovI { dst: regs::ZERO, imm: 0 });
        b.push(init, Op::MovI { dst: regs::ITER, imm: 0 });
        b.term(init, Terminator::Jmp(head));

        // head: advance iteration counter and LCG, run common segment.
        b.push(head, Op::AddI { dst: regs::ITER, a: regs::ITER, imm: 1 });
        b.push(head, Op::MulI { dst: regs::X, a: regs::X, imm: 6364136223846793005 });
        b.push(head, Op::AddI { dst: regs::X, a: regs::X, imm: 1442695040888963407 });
        b.term(head, Terminator::Jmp(common_entry));

        // phase_dispatch: PHASE = (ITER >> shift) % nphases, then switch.
        b.push(phase_dispatch, Op::ShrI { dst: regs::PHASE, a: regs::ITER, sh: self.phase_shift });
        b.push(phase_dispatch, Op::Rem { dst: regs::PHASE, a: regs::PHASE, m: u64::from(nphases) });
        b.term(phase_dispatch, Terminator::Switch { index: regs::PHASE, targets: phase_entries });

        // tail: a predictable never-taken exit check, then back to head.
        b.term(
            tail,
            Terminator::BrI {
                cond: Cond::Ge,
                a: regs::ITER,
                imm: u64::MAX / 2,
                taken: halt,
                fallthrough: head,
            },
        );
        b.term(halt, Terminator::Halt);

        b.finish(init, self.mem_words_log2)
    }

    /// Executes the workload for `len` instructions under application input
    /// `input`, producing a trace.
    ///
    /// # Panics
    ///
    /// Panics if `input >= self.inputs`.
    #[must_use]
    pub fn trace(&self, input: u32, len: usize) -> Trace {
        assert!(
            input < self.inputs,
            "input {input} out of range: {} declares {} inputs",
            self.name,
            self.inputs
        );
        let program = self.program();
        self.trace_with(&program, input, len)
    }

    /// Like [`WorkloadSpec::trace`] but reuses an already-lowered program,
    /// avoiding rebuild cost when tracing many inputs.
    #[must_use]
    pub fn trace_with(&self, program: &Program, input: u32, len: usize) -> Trace {
        Interpreter::new(program, self.input_seed(input)).run(
            len,
            TraceMeta::new(self.name.clone(), input),
        )
    }

    /// Like [`WorkloadSpec::trace`] but served from the process-wide
    /// [`crate::TraceStore`]: each `(workload, input, len)` trace is
    /// generated at most once per process, and at most once per machine when
    /// `BRANCH_LAB_TRACE_DIR` is set.
    ///
    /// # Panics
    ///
    /// Panics if `input >= self.inputs`.
    #[must_use]
    pub fn cached_trace(&self, input: u32, len: usize) -> std::sync::Arc<Trace> {
        crate::TraceStore::global().get(self, input, len)
    }
}

/// Emits all motifs of a set as one sequential chain ending at `next`,
/// returning the chain's entry block.
fn emit_set(e: &mut Emitter<'_>, set: &MotifSet, next: BlockId) -> BlockId {
    // Build in reverse so each motif can target the next one's entry.
    let mut target = next;
    for &tier in set.rare_tiers.iter().rev() {
        target = e.rare_tier(tier, target);
    }
    for &pct in set.data_dep_h2ps.iter().rev() {
        target = e.data_dep_h2p(pct, target);
    }
    for &vg in set.var_gap_h2ps.iter().rev() {
        target = e.var_gap_h2p(vg, target).0;
    }
    for _ in 0..set.correlated_pairs {
        // Vary the iteration bit inspected so pairs differ.
        let shift = 1 + (set.correlated_pairs % 5);
        target = e.correlated_pair(shift, target);
    }
    for &(outer, inner) in set.nested_imli.iter().rev() {
        target = e.nested_imli(outer, inner, target);
    }
    for &trip in set.fixed_loops.iter().rev() {
        target = e.fixed_loop(trip, target);
    }
    if set.constant_chain > 0 {
        target = e.constant_chain(set.constant_chain, target);
    }
    if set.pointer_chase_hops > 0 {
        target = e.pointer_chase(set.pointer_chase_hops, target);
    }
    target
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "tiny".into(),
            family: Family::SpecInt,
            inputs: 3,
            mem_words_log2: 12,
            phases: 2,
            phase_shift: 4,
            common: MotifSet {
                constant_chain: 2,
                data_dep_h2ps: vec![70],
                ..MotifSet::default()
            },
            per_phase: MotifSet {
                fixed_loops: vec![5],
                var_gap_h2ps: vec![VarGapSpec::default()],
                ..MotifSet::default()
            },
            default_trace_len: 10_000,
        }
    }

    #[test]
    fn program_structure_is_input_independent() {
        let spec = tiny_spec();
        let p1 = spec.program();
        let p2 = spec.program();
        assert_eq!(p1.blocks().len(), p2.blocks().len());
        assert_eq!(p1.static_cond_branch_count(), p2.static_cond_branch_count());
    }

    #[test]
    fn traces_differ_across_inputs_but_share_static_ips() {
        let spec = tiny_spec();
        let t0 = spec.trace(0, 5_000);
        let t1 = spec.trace(1, 5_000);
        let ips = |t: &Trace| {
            t.conditional_branches()
                .map(|b| b.ip)
                .collect::<std::collections::BTreeSet<_>>()
        };
        // Same static branch sites are reachable (phases aligned since
        // structure and iteration counts match).
        assert_eq!(ips(&t0), ips(&t1));
        // But the direction streams differ (different memory contents).
        let dirs = |t: &Trace| t.conditional_branches().map(|b| b.taken).collect::<Vec<_>>();
        assert_ne!(dirs(&t0), dirs(&t1));
    }

    #[test]
    fn trace_is_deterministic() {
        let spec = tiny_spec();
        let a = spec.trace(2, 4_000);
        let b = spec.trace(2, 4_000);
        assert_eq!(a.insts(), b.insts());
    }

    #[test]
    fn phases_change_executed_blocks() {
        let spec = tiny_spec();
        // Phase residence: 2^4 = 16 iterations. Trace enough for both
        // phases, then check that the sets of IPs in the first and second
        // residence windows differ (different per-phase code).
        let t = spec.trace(0, 20_000);
        let mut iter_boundaries = Vec::new();
        // The ITER increment is the first instruction of `head`; count its
        // occurrences to find iteration starts.
        // `head` starts with `ITER = ITER + 1` — the only instruction that
        // both reads and writes r1.
        let head_ip = t
            .iter()
            .find(|i| {
                i.dst.map(|r| r.index()) == Some(1) && i.src1.map(|r| r.index()) == Some(1)
            })
            .map(|i| i.ip)
            .unwrap();
        for (idx, inst) in t.iter().enumerate() {
            if inst.ip == head_ip {
                iter_boundaries.push(idx);
            }
        }
        assert!(iter_boundaries.len() > 40, "need at least 3 phase windows");
        let window_ips = |range: std::ops::Range<usize>| {
            let a = iter_boundaries[range.start];
            let b = iter_boundaries[range.end];
            t.insts()[a..b]
                .iter()
                .map(|i| i.ip)
                .collect::<std::collections::BTreeSet<_>>()
        };
        let w0 = window_ips(2..14); // inside phase 0
        let w1 = window_ips(18..30); // inside phase 1
        assert_ne!(w0, w1, "phases should execute different code");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn input_out_of_range_panics() {
        let spec = tiny_spec();
        let _ = spec.trace(99, 100);
    }

    #[test]
    fn input_seeds_are_distinct() {
        let spec = tiny_spec();
        let seeds: std::collections::BTreeSet<_> =
            (0..spec.inputs).map(|i| spec.input_seed(i)).collect();
        assert_eq!(seeds.len(), spec.inputs as usize);
    }
}
