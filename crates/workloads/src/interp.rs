//! The program interpreter: executes a [`Program`] and emits a [`Trace`].
//!
//! The interpreter is deterministic: the same program, seed, and
//! instruction budget always produce the same trace. Data memory is
//! initialized from the seed, which is how distinct "application inputs"
//! are realized — program structure (and thus every static branch IP) is
//! shared across inputs while branch dynamics differ.

use bp_trace::{BranchKind, InstClass, Reg, RetiredInst, Trace, TraceMeta, NUM_REGS};

use crate::program::{BlockId, Op, Program, Terminator};

/// A simple xorshift-multiply mixer used to initialize data memory.
///
/// Kept dependency-free so `bp-workloads`' determinism does not hinge on
/// `rand`'s stream stability across versions.
#[derive(Clone, Debug)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Executes programs into traces.
///
/// # Examples
///
/// ```
/// use bp_workloads::{Interpreter, ProgramBuilder, Op, Terminator};
/// use bp_trace::{Cond, Reg, TraceMeta};
///
/// // A two-block loop: increment r1, branch back while r1 < 5.
/// let mut b = ProgramBuilder::new();
/// let head = b.block();
/// let done = b.block();
/// b.push(head, Op::AddI { dst: Reg::new(1), a: Reg::new(1), imm: 1 });
/// b.term(head, Terminator::BrI {
///     cond: Cond::Lt,
///     a: Reg::new(1),
///     imm: 5,
///     taken: head,
///     fallthrough: done,
/// });
/// b.term(done, Terminator::Halt);
/// let p = b.finish(head, 8);
///
/// let trace = Interpreter::new(&p, 7).run(1_000, TraceMeta::new("loop", 0));
/// // 5 iterations * (AddI + branch) = 10 retired instructions.
/// assert_eq!(trace.len(), 10);
/// assert_eq!(trace.conditional_branch_count(), 5);
/// ```
#[derive(Clone, Debug)]
pub struct Interpreter<'p> {
    program: &'p Program,
    regs: [u64; NUM_REGS],
    mem: Vec<u64>,
    stack: Vec<BlockId>,
    mem_mask: u64,
}

/// Maximum call-stack depth before `Call` is treated as a halt; guards
/// against generator bugs producing unbounded recursion.
const MAX_STACK: usize = 1 << 16;

impl<'p> Interpreter<'p> {
    /// Creates an interpreter for `program`, initializing data memory from
    /// `seed`. Registers start at zero.
    #[must_use]
    pub fn new(program: &'p Program, seed: u64) -> Self {
        let words = 1usize << program.mem_words_log2();
        let mut rng = SplitMix64::new(seed ^ 0xA076_1D64_78BD_642F);
        let mem = (0..words).map(|_| rng.next()).collect();
        Interpreter {
            program,
            regs: [0; NUM_REGS],
            mem,
            stack: Vec::new(),
            mem_mask: (words - 1) as u64,
        }
    }

    fn mem_index(&self, base: u64, offset: u64) -> usize {
        (base.wrapping_add(offset) & self.mem_mask) as usize
    }

    fn exec_op(&mut self, ip: u64, op: &Op) -> RetiredInst {
        let r = |reg: Reg| self.regs[reg.index()];
        match *op {
            Op::MovI { dst, imm } => {
                self.regs[dst.index()] = imm;
                RetiredInst::op(ip, InstClass::Alu, None, None, Some(dst), imm)
            }
            Op::Add { dst, a, b } => {
                let v = r(a).wrapping_add(r(b));
                self.regs[dst.index()] = v;
                RetiredInst::op(ip, InstClass::Alu, Some(a), Some(b), Some(dst), v)
            }
            Op::Sub { dst, a, b } => {
                let v = r(a).wrapping_sub(r(b));
                self.regs[dst.index()] = v;
                RetiredInst::op(ip, InstClass::Alu, Some(a), Some(b), Some(dst), v)
            }
            Op::Mul { dst, a, b } => {
                let v = r(a).wrapping_mul(r(b));
                self.regs[dst.index()] = v;
                RetiredInst::op(ip, InstClass::Mul, Some(a), Some(b), Some(dst), v)
            }
            Op::Xor { dst, a, b } => {
                let v = r(a) ^ r(b);
                self.regs[dst.index()] = v;
                RetiredInst::op(ip, InstClass::Alu, Some(a), Some(b), Some(dst), v)
            }
            Op::And { dst, a, b } => {
                let v = r(a) & r(b);
                self.regs[dst.index()] = v;
                RetiredInst::op(ip, InstClass::Alu, Some(a), Some(b), Some(dst), v)
            }
            Op::Or { dst, a, b } => {
                let v = r(a) | r(b);
                self.regs[dst.index()] = v;
                RetiredInst::op(ip, InstClass::Alu, Some(a), Some(b), Some(dst), v)
            }
            Op::AddI { dst, a, imm } => {
                let v = r(a).wrapping_add(imm);
                self.regs[dst.index()] = v;
                RetiredInst::op(ip, InstClass::Alu, Some(a), None, Some(dst), v)
            }
            Op::MulI { dst, a, imm } => {
                let v = r(a).wrapping_mul(imm);
                self.regs[dst.index()] = v;
                RetiredInst::op(ip, InstClass::Mul, Some(a), None, Some(dst), v)
            }
            Op::AndI { dst, a, imm } => {
                let v = r(a) & imm;
                self.regs[dst.index()] = v;
                RetiredInst::op(ip, InstClass::Alu, Some(a), None, Some(dst), v)
            }
            Op::Rem { dst, a, m } => {
                let v = r(a) % m;
                self.regs[dst.index()] = v;
                RetiredInst::op(ip, InstClass::Alu, Some(a), None, Some(dst), v)
            }
            Op::ShrI { dst, a, sh } => {
                let v = r(a) >> (sh & 63);
                self.regs[dst.index()] = v;
                RetiredInst::op(ip, InstClass::Alu, Some(a), None, Some(dst), v)
            }
            Op::Load { dst, base, offset } => {
                let idx = self.mem_index(r(base), offset);
                let v = self.mem[idx];
                self.regs[dst.index()] = v;
                RetiredInst::mem(
                    ip,
                    InstClass::Load,
                    (idx as u64) << 3,
                    Some(base),
                    None,
                    Some(dst),
                    v,
                )
            }
            Op::Store { src, base, offset } => {
                let idx = self.mem_index(r(base), offset);
                let v = r(src);
                self.mem[idx] = v;
                RetiredInst::mem(
                    ip,
                    InstClass::Store,
                    (idx as u64) << 3,
                    Some(src),
                    Some(base),
                    None,
                    v,
                )
            }
            Op::Nop => RetiredInst::op(ip, InstClass::Nop, None, None, None, 0),
        }
    }

    /// Runs the program for up to `max_insts` retired instructions (or
    /// until it halts) and returns the trace.
    #[must_use]
    pub fn run(mut self, max_insts: usize, meta: TraceMeta) -> Trace {
        let mut trace = Trace::with_capacity(meta, max_insts.min(1 << 24));
        let mut cur = self.program.entry();
        'outer: loop {
            let addr = self.program.block_addr(cur);
            // Split the borrow: read ops out of the program (immutable)
            // while mutating machine state.
            let block = &self.program.blocks()[cur.index()];
            for (i, op) in block.insts.iter().enumerate() {
                if trace.len() >= max_insts {
                    break 'outer;
                }
                let rec = self.exec_op(addr + crate::program::INST_BYTES * i as u64, op);
                trace.push(rec);
            }
            if trace.len() >= max_insts {
                break;
            }
            let term_ip = self.program.term_addr(cur);
            let next = match &block.term {
                Terminator::Br {
                    cond,
                    a,
                    b,
                    taken,
                    fallthrough,
                } => {
                    let t = cond.eval(self.regs[a.index()], self.regs[b.index()]);
                    let target = if t { *taken } else { *fallthrough };
                    trace.push(RetiredInst::cond_branch(
                        term_ip,
                        t,
                        self.program.block_addr(*taken),
                        Some(a.index() as u8),
                        Some(b.index() as u8),
                    ));
                    target
                }
                Terminator::BrI {
                    cond,
                    a,
                    imm,
                    taken,
                    fallthrough,
                } => {
                    let t = cond.eval(self.regs[a.index()], *imm);
                    let target = if t { *taken } else { *fallthrough };
                    trace.push(RetiredInst::cond_branch(
                        term_ip,
                        t,
                        self.program.block_addr(*taken),
                        Some(a.index() as u8),
                        None,
                    ));
                    target
                }
                Terminator::Jmp(t) => {
                    trace.push(RetiredInst::uncond_branch(
                        term_ip,
                        BranchKind::DirectJump,
                        self.program.block_addr(*t),
                    ));
                    *t
                }
                Terminator::Switch { index, targets } => {
                    let sel = (self.regs[index.index()] % targets.len() as u64) as usize;
                    let t = targets[sel];
                    trace.push(RetiredInst {
                        src1: Some(*index),
                        ..RetiredInst::uncond_branch(
                            term_ip,
                            BranchKind::IndirectJump,
                            self.program.block_addr(t),
                        )
                    });
                    t
                }
                Terminator::Call { callee, ret_to } => {
                    trace.push(RetiredInst::uncond_branch(
                        term_ip,
                        BranchKind::Call,
                        self.program.block_addr(*callee),
                    ));
                    if self.stack.len() >= MAX_STACK {
                        break 'outer;
                    }
                    self.stack.push(*ret_to);
                    *callee
                }
                Terminator::Ret => match self.stack.pop() {
                    Some(ret) => {
                        trace.push(RetiredInst::uncond_branch(
                            term_ip,
                            BranchKind::Return,
                            self.program.block_addr(ret),
                        ));
                        ret
                    }
                    None => break 'outer,
                },
                Terminator::Halt => break 'outer,
            };
            cur = next;
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;
    use bp_trace::Cond;

    fn reg(i: u8) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let p = counting_loop(100);
        let a = Interpreter::new(&p, 42).run(500, TraceMeta::new("a", 0));
        let b = Interpreter::new(&p, 42).run(500, TraceMeta::new("a", 0));
        assert_eq!(a.insts(), b.insts());
    }

    #[test]
    fn different_seed_changes_memory_data() {
        // Program loads mem[5] into r1 and halts.
        let mut b = ProgramBuilder::new();
        let e = b.block();
        b.push(e, Op::Load { dst: reg(1), base: reg(31), offset: 5 });
        b.term(e, Terminator::Halt);
        let p = b.finish(e, 8);
        let t1 = Interpreter::new(&p, 1).run(10, TraceMeta::new("m", 0));
        let t2 = Interpreter::new(&p, 2).run(10, TraceMeta::new("m", 1));
        assert_ne!(t1[0].dst_value, t2[0].dst_value);
        assert_eq!(t1[0].mem_addr, 5 * 8);
    }

    fn counting_loop(n: u64) -> Program {
        let mut b = ProgramBuilder::new();
        let head = b.block();
        let done = b.block();
        b.push(head, Op::AddI { dst: reg(1), a: reg(1), imm: 1 });
        b.term(
            head,
            Terminator::BrI {
                cond: Cond::Lt,
                a: reg(1),
                imm: n,
                taken: head,
                fallthrough: done,
            },
        );
        b.term(done, Terminator::Halt);
        b.finish(head, 8)
    }

    #[test]
    fn loop_branch_directions() {
        let p = counting_loop(4);
        let t = Interpreter::new(&p, 0).run(100, TraceMeta::new("l", 0));
        let dirs: Vec<bool> = t.conditional_branches().map(|b| b.taken).collect();
        assert_eq!(dirs, vec![true, true, true, false]);
    }

    #[test]
    fn budget_stops_execution() {
        let p = counting_loop(1_000_000);
        let t = Interpreter::new(&p, 0).run(64, TraceMeta::new("b", 0));
        assert_eq!(t.len(), 64);
    }

    #[test]
    fn call_and_ret_emit_kinds() {
        let mut b = ProgramBuilder::new();
        let e = b.block();
        let f = b.block();
        let r = b.block();
        b.term(e, Terminator::Call { callee: f, ret_to: r });
        b.push(f, Op::Nop);
        b.term(f, Terminator::Ret);
        b.term(r, Terminator::Halt);
        let p = b.finish(e, 8);
        let t = Interpreter::new(&p, 0).run(100, TraceMeta::new("c", 0));
        let kinds: Vec<_> = t.iter().filter_map(|i| i.branch.map(|b| b.kind)).collect();
        assert_eq!(kinds, vec![BranchKind::Call, BranchKind::Return]);
    }

    #[test]
    fn switch_selects_by_modulo() {
        let mut b = ProgramBuilder::new();
        let e = b.block();
        let t0 = b.block();
        let t1 = b.block();
        b.push(e, Op::MovI { dst: reg(2), imm: 5 });
        b.term(e, Terminator::Switch { index: reg(2), targets: vec![t0, t1] });
        b.push(t0, Op::MovI { dst: reg(3), imm: 100 });
        b.term(t0, Terminator::Halt);
        b.push(t1, Op::MovI { dst: reg(3), imm: 200 });
        b.term(t1, Terminator::Halt);
        let p = b.finish(e, 8);
        let t = Interpreter::new(&p, 0).run(100, TraceMeta::new("s", 0));
        // 5 % 2 == 1 -> t1 -> writes 200.
        assert_eq!(t.insts().last().unwrap().dst_value, 200);
        assert_eq!(
            t.iter().filter_map(|i| i.branch).next().unwrap().kind,
            BranchKind::IndirectJump
        );
    }

    #[test]
    fn store_then_load_roundtrip() {
        let mut b = ProgramBuilder::new();
        let e = b.block();
        b.push(e, Op::MovI { dst: reg(1), imm: 0xabcd });
        b.push(e, Op::Store { src: reg(1), base: reg(31), offset: 9 });
        b.push(e, Op::Load { dst: reg(2), base: reg(31), offset: 9 });
        b.term(e, Terminator::Halt);
        let p = b.finish(e, 8);
        let t = Interpreter::new(&p, 3).run(10, TraceMeta::new("rw", 0));
        assert_eq!(t[2].dst_value, 0xabcd);
    }

    #[test]
    fn splitmix_is_stable() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..16 {
            assert_eq!(a.next(), b.next());
        }
    }
}
