//! Branch-behaviour motifs.
//!
//! Each motif emits a single-entry/single-exit code region reproducing one
//! of the branch behaviour classes the paper measures:
//!
//! * predictable behaviours — constant-direction chains, fixed-trip loops,
//!   nested (IMLI-style) loops, iteration-correlated pairs — supply the
//!   highly-predictable bulk that gives real applications their >0.95
//!   aggregate accuracy;
//! * **variable-gap correlated branches** are the paper's systematic H2Ps:
//!   the outcome is determined by an earlier *dependency branch*, but a
//!   data-dependent number of noisy branches separates the two, so the
//!   correlated direction appears at an unstable global-history position
//!   (§IV-A, Fig. 6) and exact-pattern matchers like TAGE thrash their
//!   tables learning it;
//! * **data-dependent branches** are irreducible H2Ps: a fresh pseudo-random
//!   value decides the direction at a fixed bias;
//! * **rare pockets** reproduce the LCF rare-branch phenomenon (§III-B): an
//!   indirect dispatch spreads execution over many pockets of branches with
//!   per-site biases, so each static branch executes only a handful of
//!   times per slice.
//!
//! Randomness inside a running program comes from loads of seed-initialized
//! data memory at LCG-derived addresses, so every direction is a pure
//! function of (program structure, input seed) — fully deterministic and
//! reproducible.

use bp_trace::{Cond, Reg};

use crate::interp::SplitMix64;
use crate::program::{BlockId, Op, ProgramBuilder, Terminator};

/// Register conventions used by generated programs.
pub mod regs {
    use bp_trace::Reg;

    /// Main LCG state, advanced once per outer-loop iteration.
    pub const X: Reg = Reg::new(0);
    /// Outer-loop iteration counter.
    pub const ITER: Reg = Reg::new(1);
    /// Current phase index.
    pub const PHASE: Reg = Reg::new(2);
    /// Address-computation temporary used by random loads.
    pub const ADDR: Reg = Reg::new(3);
    /// First motif scratch register; motifs may use `SCRATCH0..=SCRATCH7`.
    pub const SCRATCH0: Reg = Reg::new(4);
    /// Always-zero register (initialized once, never rewritten).
    pub const ZERO: Reg = Reg::new(31);
}

/// Specification of a variable-gap correlated H2P region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VarGapSpec {
    /// Percent chance the dependency branch (and thus the H2P) is taken.
    pub dep_bias_pct: u8,
    /// Maximum number of noise-loop iterations between the dependency
    /// branch and the H2P (the gap is uniform in `1..=gap_max`).
    pub gap_max: u8,
    /// Taken-percentage of the noise branches inside the gap.
    pub noise_bias_pct: u8,
}

impl Default for VarGapSpec {
    fn default() -> Self {
        VarGapSpec {
            dep_bias_pct: 65,
            gap_max: 6,
            noise_bias_pct: 80,
        }
    }
}

/// Specification of one rare-pocket dispatch tier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RareTier {
    /// Number of pockets behind the indirect dispatch. A pocket is visited
    /// on average once every `pockets` outer-loop iterations.
    pub pockets: u32,
    /// Conditional branches per pocket.
    pub branches_per_pocket: u32,
    /// Lower bound (inclusive) of per-branch taken-bias percentages.
    pub bias_min_pct: u8,
    /// Upper bound (inclusive) of per-branch taken-bias percentages.
    pub bias_max_pct: u8,
    /// When true, per-branch biases cluster near the two range ends
    /// (strongly taken or strongly not-taken): each branch is highly
    /// predictable *given its own table entry*, but entries shared through
    /// aliasing mix opposite directions — the capacity effect that makes
    /// predictor storage matter (§IV-B, Fig. 7).
    pub polarized: bool,
}

/// Emits motif code regions into a [`ProgramBuilder`].
///
/// Structure randomness (salts, biases) comes from a deterministic stream
/// derived from the workload name, so program structure is identical across
/// application inputs.
#[derive(Debug)]
pub struct Emitter<'b> {
    builder: &'b mut ProgramBuilder,
    rng: SplitMix64,
}

impl<'b> Emitter<'b> {
    /// Creates an emitter over `builder` with structure seed `seed`.
    pub fn new(builder: &'b mut ProgramBuilder, seed: u64) -> Self {
        Emitter {
            builder,
            rng: SplitMix64::new(seed),
        }
    }

    /// Access to the underlying builder.
    pub fn builder(&mut self) -> &mut ProgramBuilder {
        self.builder
    }

    fn salt(&mut self) -> u64 {
        self.rng.next()
    }

    fn rand_in(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.rng.next() % (hi - lo + 1)
    }

    /// Emits `y = mem[(X + salt) mod memsize]` into `block`, leaving the
    /// loaded value in `dst`, plus a little ALU filler so generated code
    /// has a realistic (~18%) branch density rather than one branch every
    /// three instructions. Each call uses a fresh salt, giving an
    /// independent pseudo-random stream per call site.
    fn rand_load(&mut self, block: BlockId, dst: Reg) {
        let salt = self.salt();
        self.builder.push(
            block,
            Op::AddI {
                dst: regs::ADDR,
                a: regs::X,
                imm: salt,
            },
        );
        self.builder.push(
            block,
            Op::Load {
                dst,
                base: regs::ADDR,
                offset: 0,
            },
        );
        // Filler: dependent but dead-end ALU work (r13/r14 are reserved
        // for this; no motif reads them).
        let f0 = Reg::new(13);
        let f1 = Reg::new(14);
        self.builder.push(block, Op::Add { dst: f0, a: dst, b: regs::ITER });
        self.builder.push(block, Op::ShrI { dst: f1, a: f0, sh: 3 });
        self.builder.push(block, Op::Xor { dst: f0, a: f1, b: regs::X });
    }

    /// A serial pointer-chase: `hops` dependent loads through data memory
    /// per visit. This is the workload's memory-level serial backbone —
    /// the reason pipeline-capacity scaling saturates even under perfect
    /// branch prediction (the paper's Fig. 1 ceiling).
    pub fn pointer_chase(&mut self, hops: u32, next: BlockId) -> BlockId {
        assert!(hops > 0, "need at least one hop");
        let ptr = Reg::new(15);
        let blk = self.builder.block();
        let salt = self.salt();
        // Re-seed the chase pointer from X each visit: the chase is serial
        // *within* an iteration but independent *across* iterations, so
        // memory-level parallelism grows with the instruction window —
        // which is what pipeline-capacity scaling buys (Fig. 1).
        self.builder.push(blk, Op::Or { dst: ptr, a: regs::X, b: regs::ZERO });
        for _ in 0..hops {
            self.builder.push(blk, Op::Load { dst: ptr, base: ptr, offset: salt });
        }
        self.builder.term(blk, Terminator::Jmp(next));
        blk
    }

    /// Emits a "stat branch" whose both edges converge on `next`: the
    /// direction is recorded in the trace but control always continues at
    /// `next`. `pct_reg` must hold a value in `0..100`; the branch is taken
    /// iff `pct_reg < bias_pct`.
    fn pct_branch(&mut self, block: BlockId, pct_reg: Reg, bias_pct: u8, next: BlockId) {
        self.builder.term(
            block,
            Terminator::BrI {
                cond: Cond::Lt,
                a: pct_reg,
                imm: u64::from(bias_pct),
                taken: next,
                fallthrough: next,
            },
        );
    }

    /// Chain of `count` constant-direction branches (alternating
    /// always-taken / never-taken), each in its own block with a little
    /// ALU filler. Returns the entry block.
    pub fn constant_chain(&mut self, count: u32, next: BlockId) -> BlockId {
        let mut target = next;
        for i in 0..count {
            let blk = self.builder.block();
            self.builder.push(
                blk,
                Op::AddI {
                    dst: regs::SCRATCH0,
                    a: regs::ITER,
                    imm: u64::from(i),
                },
            );
            self.builder.push(
                blk,
                Op::Mul { dst: Reg::new(13), a: regs::SCRATCH0, b: regs::SCRATCH0 },
            );
            self.builder.push(
                blk,
                Op::ShrI { dst: Reg::new(14), a: Reg::new(13), sh: 2 },
            );
            self.builder.push(
                blk,
                Op::Xor { dst: Reg::new(13), a: Reg::new(14), b: regs::X },
            );
            // ZERO >= 0 is always true; ZERO < 0 never is.
            let cond = if i % 2 == 0 { Cond::Ge } else { Cond::Lt };
            self.builder.term(
                blk,
                Terminator::BrI {
                    cond,
                    a: regs::ZERO,
                    imm: 0,
                    taken: target,
                    fallthrough: target,
                },
            );
            target = blk;
        }
        target
    }

    /// A fixed-trip-count counted loop with a small ALU/memory body. The
    /// back edge is taken `trip - 1` times then falls through — predictable
    /// for any loop-capable predictor once the trip count is learned.
    ///
    /// # Panics
    ///
    /// Panics if `trip` is zero.
    pub fn fixed_loop(&mut self, trip: u32, next: BlockId) -> BlockId {
        assert!(trip > 0, "loop trip count must be positive");
        let pre = self.builder.block();
        let head = self.builder.block();
        let ctr = regs::SCRATCH0;
        let acc = Reg::new(5);
        self.builder.push(pre, Op::MovI { dst: ctr, imm: 0 });
        self.builder.term(pre, Terminator::Jmp(head));
        self.builder.push(
            head,
            Op::Add {
                dst: acc,
                a: acc,
                b: regs::X,
            },
        );
        self.builder.push(
            head,
            Op::ShrI {
                dst: acc,
                a: acc,
                sh: 1,
            },
        );
        self.builder.push(head, Op::Add { dst: Reg::new(13), a: acc, b: ctr });
        self.builder.push(head, Op::AndI { dst: Reg::new(14), a: Reg::new(13), imm: 0xff });
        self.builder.push(head, Op::AddI { dst: ctr, a: ctr, imm: 1 });
        self.builder.term(
            head,
            Terminator::BrI {
                cond: Cond::Lt,
                a: ctr,
                imm: u64::from(trip),
                taken: head,
                fallthrough: next,
            },
        );
        pre
    }

    /// Nested counted loops where an extra branch fires only on the last
    /// inner iteration — the behaviour IMLI-style predictors target.
    pub fn nested_imli(&mut self, outer: u32, inner: u32, next: BlockId) -> BlockId {
        assert!(outer > 0 && inner > 0, "nest trip counts must be positive");
        let o_ctr = Reg::new(6);
        let i_ctr = Reg::new(7);
        let pre = self.builder.block();
        let o_head = self.builder.block();
        let i_head = self.builder.block();
        let i_last = self.builder.block();
        let o_latch = self.builder.block();
        self.builder.push(pre, Op::MovI { dst: o_ctr, imm: 0 });
        self.builder.term(pre, Terminator::Jmp(o_head));
        self.builder.push(o_head, Op::MovI { dst: i_ctr, imm: 0 });
        self.builder.term(o_head, Terminator::Jmp(i_head));
        // Inner body: one ALU op, the "last iteration?" stat branch, latch.
        self.builder.push(
            i_head,
            Op::Xor {
                dst: regs::SCRATCH0,
                a: regs::X,
                b: i_ctr,
            },
        );
        self.builder.push(
            i_head,
            Op::Mul { dst: Reg::new(13), a: regs::SCRATCH0, b: i_ctr },
        );
        self.builder.push(
            i_head,
            Op::ShrI { dst: Reg::new(14), a: Reg::new(13), sh: 1 },
        );
        self.builder.term(
            i_head,
            Terminator::BrI {
                cond: Cond::Eq,
                a: i_ctr,
                imm: u64::from(inner - 1),
                taken: i_last,
                fallthrough: i_last,
            },
        );
        self.builder.push(i_last, Op::AddI { dst: i_ctr, a: i_ctr, imm: 1 });
        self.builder.term(
            i_last,
            Terminator::BrI {
                cond: Cond::Lt,
                a: i_ctr,
                imm: u64::from(inner),
                taken: i_head,
                fallthrough: o_latch,
            },
        );
        self.builder.push(o_latch, Op::AddI { dst: o_ctr, a: o_ctr, imm: 1 });
        self.builder.term(
            o_latch,
            Terminator::BrI {
                cond: Cond::Lt,
                a: o_ctr,
                imm: u64::from(outer),
                taken: o_head,
                fallthrough: next,
            },
        );
        pre
    }

    /// Two branches whose outcomes are both `(ITER >> shift) & 1` — the
    /// second is perfectly correlated with the first at a short, fixed
    /// history distance, so history-based predictors learn it quickly.
    pub fn correlated_pair(&mut self, shift: u32, next: BlockId) -> BlockId {
        let bit = regs::SCRATCH0;
        let b1 = self.builder.block();
        let mid = self.builder.block();
        let b2 = self.builder.block();
        self.builder.push(b1, Op::ShrI { dst: bit, a: regs::ITER, sh: shift });
        self.builder.push(b1, Op::AndI { dst: bit, a: bit, imm: 1 });
        self.builder.term(
            b1,
            Terminator::BrI {
                cond: Cond::Eq,
                a: bit,
                imm: 1,
                taken: mid,
                fallthrough: mid,
            },
        );
        self.builder.push(mid, Op::AddI { dst: Reg::new(5), a: bit, imm: 3 });
        self.builder.push(
            mid,
            Op::Mul {
                dst: Reg::new(5),
                a: Reg::new(5),
                b: Reg::new(5),
            },
        );
        self.builder.term(mid, Terminator::Jmp(b2));
        self.builder.term(
            b2,
            Terminator::BrI {
                cond: Cond::Eq,
                a: bit,
                imm: 1,
                taken: next,
                fallthrough: next,
            },
        );
        b1
    }

    /// An irreducible data-dependent H2P: a fresh pseudo-random percentage
    /// decides the direction at `taken_pct` bias, uncorrelated with any
    /// history. Best achievable accuracy is `max(p, 1-p)`.
    pub fn data_dep_h2p(&mut self, taken_pct: u8, next: BlockId) -> BlockId {
        let blk = self.builder.block();
        let y = regs::SCRATCH0;
        let pct = Reg::new(5);
        self.rand_load(blk, y);
        self.builder.push(blk, Op::Rem { dst: pct, a: y, m: 100 });
        self.pct_branch(blk, pct, taken_pct, next);
        self.builder.annotate(blk, "dd-h2p");
        blk
    }

    /// The paper's systematic H2P: a *dependency branch* `D` resolves a
    /// biased pseudo-random condition; a data-dependent number of noisy
    /// loop iterations then separates `D` from the H2P, which branches on
    /// the *same* condition value. The H2P is exactly predictable from
    /// `D`'s outcome, but that outcome sits at an unstable history
    /// position surrounded by noise — defeating exact-pattern matching
    /// while remaining learnable by position-tolerant models.
    ///
    /// Returns the entry block, and reports the H2P's block so callers can
    /// recover its IP after `finish`.
    pub fn var_gap_h2p(&mut self, spec: VarGapSpec, next: BlockId) -> (BlockId, BlockId) {
        assert!(spec.gap_max > 0, "gap_max must be positive");
        let y = regs::SCRATCH0;
        let pct = Reg::new(5); // survives the gap loop
        let y2 = Reg::new(7);
        let gap = Reg::new(8);
        let gctr = Reg::new(9);
        let noise = Reg::new(10);
        let npct = Reg::new(11);

        let entry = self.builder.block();
        let gap_pre = self.builder.block();
        let gap_head = self.builder.block();
        let gap_latch = self.builder.block();
        let h2p_blk = self.builder.block();

        // Dependency branch D on `pct < dep_bias`.
        self.rand_load(entry, y);
        self.builder.push(entry, Op::Rem { dst: pct, a: y, m: 100 });
        self.pct_branch(entry, pct, spec.dep_bias_pct, gap_pre);

        // Gap setup: t = 1 + (y2 % gap_max).
        self.rand_load(gap_pre, y2);
        self.builder.push(gap_pre, Op::Rem { dst: gap, a: y2, m: u64::from(spec.gap_max) });
        self.builder.push(gap_pre, Op::AddI { dst: gap, a: gap, imm: 1 });
        self.builder.push(gap_pre, Op::MovI { dst: gctr, imm: 0 });
        self.builder.term(gap_pre, Terminator::Jmp(gap_head));

        // Noise body: per-iteration fresh random biased branch.
        self.builder.push(gap_head, Op::Add { dst: regs::ADDR, a: regs::X, b: gctr });
        let salt = self.salt();
        self.builder.push(gap_head, Op::Load { dst: noise, base: regs::ADDR, offset: salt });
        self.builder.push(gap_head, Op::Rem { dst: npct, a: noise, m: 100 });
        self.pct_branch(gap_head, npct, spec.noise_bias_pct, gap_latch);

        self.builder.push(gap_latch, Op::AddI { dst: gctr, a: gctr, imm: 1 });
        self.builder.term(
            gap_latch,
            Terminator::Br {
                cond: Cond::Lt,
                a: gctr,
                b: gap,
                taken: gap_head,
                fallthrough: h2p_blk,
            },
        );

        // The H2P itself: same condition value as D.
        self.builder.annotate(entry, "vg-dep");
        self.builder.annotate(h2p_blk, "vg-h2p");
        self.builder.push(h2p_blk, Op::Or { dst: Reg::new(12), a: pct, b: regs::ZERO });
        self.builder.term(
            h2p_blk,
            Terminator::BrI {
                cond: Cond::Lt,
                a: Reg::new(12),
                imm: u64::from(spec.dep_bias_pct),
                taken: next,
                fallthrough: next,
            },
        );
        (entry, h2p_blk)
    }

    /// One rare-pocket tier: an indirect dispatch over `tier.pockets`
    /// pockets, each containing `tier.branches_per_pocket` biased
    /// stat branches. Per-branch biases are fixed at build time, uniform in
    /// `bias_min_pct..=bias_max_pct`.
    pub fn rare_tier(&mut self, tier: RareTier, next: BlockId) -> BlockId {
        assert!(tier.pockets > 0 && tier.branches_per_pocket > 0);
        assert!(tier.bias_min_pct <= tier.bias_max_pct && tier.bias_max_pct <= 100);
        let sel = regs::SCRATCH0;
        let entry = self.builder.block();
        self.rand_load(entry, sel);

        let mut targets = Vec::with_capacity(tier.pockets as usize);
        for _ in 0..tier.pockets {
            // Pocket = chain of stat-branch blocks ending at `next`.
            let mut target = next;
            for _ in 0..tier.branches_per_pocket {
                let blk = self.builder.block();
                let y = Reg::new(5);
                let pct = Reg::new(6);
                self.rand_load(blk, y);
                self.builder.push(blk, Op::Rem { dst: pct, a: y, m: 100 });
                let (lo, hi) = (u64::from(tier.bias_min_pct), u64::from(tier.bias_max_pct));
                let bias = if tier.polarized {
                    let span = (hi - lo).min(16) / 2;
                    if self.rng.next().is_multiple_of(2) {
                        self.rand_in(lo, lo + span)
                    } else {
                        self.rand_in(hi - span, hi)
                    }
                } else {
                    self.rand_in(lo, hi)
                };
                self.pct_branch(blk, pct, bias as u8, target);
                target = blk;
            }
            targets.push(target);
        }
        self.builder.term(entry, Terminator::Switch { index: sel, targets });
        entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interpreter;
    use crate::program::ProgramBuilder;
    use bp_trace::TraceMeta;

    /// Wraps a motif in a driver loop: init regs, then per iteration update
    /// X and run the motif, looping forever.
    fn run_motif(
        emit: impl FnOnce(&mut Emitter<'_>, BlockId) -> BlockId,
        len: usize,
        seed: u64,
    ) -> bp_trace::Trace {
        let mut b = ProgramBuilder::new();
        let init = b.block();
        let head = b.block();
        let tail = b.block();
        let mut e = Emitter::new(&mut b, 99);
        let entry = emit(&mut e, tail);
        b.push(init, Op::MovI { dst: regs::X, imm: 0x1234_5678 });
        b.term(init, Terminator::Jmp(head));
        b.push(head, Op::AddI { dst: regs::ITER, a: regs::ITER, imm: 1 });
        b.push(head, Op::MulI { dst: regs::X, a: regs::X, imm: 6364136223846793005 });
        b.push(head, Op::AddI { dst: regs::X, a: regs::X, imm: 1442695040888963407 });
        b.term(head, Terminator::Jmp(entry));
        b.term(tail, Terminator::Jmp(head));
        let p = b.finish(init, 12);
        Interpreter::new(&p, seed).run(len, TraceMeta::new("motif", 0))
    }

    fn taken_rate(trace: &bp_trace::Trace, ip: Option<u64>) -> f64 {
        let mut taken = 0u64;
        let mut total = 0u64;
        for br in trace.conditional_branches() {
            if ip.is_none_or(|x| x == br.ip) {
                total += 1;
                taken += u64::from(br.taken);
            }
        }
        taken as f64 / total.max(1) as f64
    }

    #[test]
    fn constant_chain_directions_alternate() {
        let t = run_motif(|e, next| e.constant_chain(4, next), 2_000, 1);
        // Collect per-IP taken rates; each must be exactly 0.0 or 1.0.
        let mut ips: std::collections::HashMap<u64, (u64, u64)> = Default::default();
        for br in t.conditional_branches() {
            let e = ips.entry(br.ip).or_default();
            e.0 += u64::from(br.taken);
            e.1 += 1;
        }
        assert_eq!(ips.len(), 4);
        for (_, (tk, tot)) in ips {
            assert!(tk == 0 || tk == tot);
        }
    }

    #[test]
    fn fixed_loop_backedge_rate() {
        let t = run_motif(|e, next| e.fixed_loop(10, next), 5_000, 2);
        // Loop back edge taken 9/10 of the time.
        let mut per_ip: std::collections::HashMap<u64, (u64, u64)> = Default::default();
        for br in t.conditional_branches() {
            let e = per_ip.entry(br.ip).or_default();
            e.0 += u64::from(br.taken);
            e.1 += 1;
        }
        let (&_ip, &(tk, tot)) = per_ip.iter().max_by_key(|(_, (_, tot))| *tot).unwrap();
        let rate = tk as f64 / tot as f64;
        assert!((rate - 0.9).abs() < 0.02, "back-edge rate {rate}");
    }

    #[test]
    fn data_dep_h2p_hits_bias() {
        let t = run_motif(|e, next| e.data_dep_h2p(70, next), 30_000, 3);
        // There is exactly one conditional IP in the motif itself; overall
        // rate is dominated by it (driver adds none).
        let rate = taken_rate(&t, None);
        assert!((rate - 0.70).abs() < 0.04, "rate {rate}");
    }

    #[test]
    fn var_gap_h2p_matches_dependency_outcome() {
        let mut b = ProgramBuilder::new();
        let init = b.block();
        let head = b.block();
        let tail = b.block();
        let mut e = Emitter::new(&mut b, 7);
        let (entry, h2p_blk) = e.var_gap_h2p(VarGapSpec::default(), tail);
        b.push(init, Op::MovI { dst: regs::X, imm: 42 });
        b.term(init, Terminator::Jmp(head));
        b.push(head, Op::MulI { dst: regs::X, a: regs::X, imm: 6364136223846793005 });
        b.push(head, Op::AddI { dst: regs::X, a: regs::X, imm: 1442695040888963407 });
        b.term(head, Terminator::Jmp(entry));
        b.term(tail, Terminator::Jmp(head));
        let p = b.finish(init, 12);
        let h2p_ip = p.term_addr(h2p_blk);
        let d_ip = p.term_addr(entry);
        let t = Interpreter::new(&p, 11).run(50_000, TraceMeta::new("vg", 0));

        // Every dynamic H2P execution must match the immediately preceding
        // dependency-branch outcome.
        let mut last_d = None;
        let mut pairs = 0;
        for br in t.conditional_branches() {
            if br.ip == d_ip {
                last_d = Some(br.taken);
            } else if br.ip == h2p_ip {
                assert_eq!(Some(br.taken), last_d, "H2P must mirror D");
                pairs += 1;
            }
        }
        assert!(pairs > 100, "expected many D/H2P pairs, got {pairs}");
    }

    #[test]
    fn rare_tier_spreads_execution() {
        let tier = RareTier {
            pockets: 64,
            branches_per_pocket: 2,
            bias_min_pct: 10,
            bias_max_pct: 90,
            polarized: false,
        };
        let t = run_motif(|e, next| e.rare_tier(tier, next), 60_000, 5);
        let mut ips: std::collections::HashSet<u64> = Default::default();
        let mut count = 0u64;
        for br in t.conditional_branches() {
            ips.insert(br.ip);
            count += 1;
        }
        // Many distinct static IPs, each executing only a few times.
        assert!(ips.len() > 80, "observed {} static IPs", ips.len());
        let avg = count as f64 / ips.len() as f64;
        assert!(avg < 60.0, "avg execs per static branch {avg}");
    }

    #[test]
    fn correlated_pair_is_deterministic_from_iter() {
        let t = run_motif(|e, next| e.correlated_pair(1, next), 4_000, 9);
        let brs: Vec<_> = t.conditional_branches().collect();
        // Branches come in (B1, B2) pairs with identical outcomes.
        for pair in brs.chunks(2) {
            if pair.len() == 2 {
                assert_eq!(pair[0].taken, pair[1].taken);
            }
        }
    }

    #[test]
    fn nested_imli_last_iteration_branch() {
        let t = run_motif(|e, next| e.nested_imli(3, 5, next), 10_000, 13);
        // Find the "last inner iteration" branch: taken exactly 1/5 of the
        // time.
        let mut per_ip: std::collections::HashMap<u64, (u64, u64)> = Default::default();
        for br in t.conditional_branches() {
            let e = per_ip.entry(br.ip).or_default();
            e.0 += u64::from(br.taken);
            e.1 += 1;
        }
        let found = per_ip.values().any(|&(tk, tot)| {
            tot > 100 && (tk as f64 / tot as f64 - 0.2).abs() < 0.02
        });
        assert!(found, "no 1-in-5 branch found: {per_ip:?}");
    }
}
