//! Manifest determinism across thread counts.
//!
//! The metrics counters must record *what work was done*, not *how it was
//! scheduled*: running the same study on 1 worker and on 8 workers has to
//! produce identical counter tables, with only the volatile fields
//! (`threads`, `wall_time_ns`, `timers_ns`) differing. This is the
//! property that makes manifests diffable regression artifacts.
//!
//! This lives in its own integration-test binary (= its own process)
//! because it force-enables the global metrics registry and calls
//! [`bp_metrics::reset`], which would race with counter assertions in
//! other tests sharing the process.

use std::collections::BTreeMap;

use branch_lab::core::{scaling_study_with, DatasetConfig, Engine};
use branch_lab::metrics;
use branch_lab::workloads::specint_suite;

#[test]
fn manifests_identical_across_thread_counts() {
    metrics::force_enable();
    let cfg = DatasetConfig::quick().with_trace_len(20_000);
    let suite = &specint_suite()[..3];

    // Pre-warm the shared trace store so both measured runs see pure
    // cache hits; otherwise the first run would count generations and
    // the second hits, and the tables would differ for storage reasons,
    // not scheduling reasons.
    let _ = scaling_study_with(Engine::with_threads(1), suite, &cfg);

    let mut manifests = Vec::new();
    for threads in [1usize, 8] {
        metrics::reset();
        let study = scaling_study_with(Engine::with_threads(threads), suite, &cfg);
        assert_eq!(study.scales.len(), 6);
        let mut info = BTreeMap::new();
        info.insert("threads_requested".to_owned(), threads.to_string());
        manifests.push(metrics::Manifest::capture("scaling", info, 0).to_json());
    }

    // Both manifests are valid JSON with a populated counter table.
    for m in &manifests {
        let v = metrics::json::parse(m).expect("manifest must be valid JSON");
        let counters = v
            .as_obj()
            .and_then(|o| o.get("counters"))
            .and_then(metrics::json::Value::as_obj)
            .expect("manifest must have a counters object");
        assert!(
            counters.contains_key("engine.tasks"),
            "expected engine counters, got {:?}",
            counters.keys().collect::<Vec<_>>()
        );
        assert!(counters.contains_key("pipeline.instructions"));
        assert!(counters.contains_key("tage.lookup"));
    }

    // Modulo the volatile fields (threads, wall time, timers — and the
    // info block we deliberately varied), the runs must be byte-equal.
    let strip = |m: &str| {
        let mut v = metrics::json::parse(m).expect("valid JSON");
        if let Some(o) = v.as_obj_mut() {
            o.remove("info");
        }
        metrics::normalize(&v.to_json()).expect("normalizable")
    };
    assert_eq!(
        strip(&manifests[0]),
        strip(&manifests[1]),
        "counter tables must not depend on the engine thread count"
    );
}
