//! Integration tests for `branch-lab serve`: cache-key determinism, the
//! end-to-end HTTP loop, singleflight coalescing, byte-identity with the
//! CLI's report rendering, and corrupt-entry quarantine across server
//! instances.
//!
//! Each test binds its own ephemeral-port server over its own
//! `StudyService`, and uses a study/len combination unique to that test
//! so cache keys never collide across tests sharing the process-global
//! metrics counters.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;

use bp_core::serve::cache::CacheKey;
use bp_core::serve::Server;
use bp_core::{DatasetConfig, SamplingConfig, StudyCtx};
use bp_experiments::serve::{study_key, sweep_key, StudyService};
use bp_experiments::{registry, Cli};

/// A served response, parsed just enough for assertions.
struct Reply {
    status: u16,
    cache: String,
    key: String,
    body: Vec<u8>,
}

fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> Reply {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header/body separator");
    let head = std::str::from_utf8(&raw[..split]).unwrap();
    let status: u16 = head
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let find = |name: &str| {
        head.lines()
            .filter_map(|l| l.split_once(':'))
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.trim().to_string())
            .unwrap_or_default()
    };
    Reply {
        status,
        cache: find("x-branch-lab-cache"),
        key: find("x-branch-lab-key"),
        body: raw[split + 4..].to_vec(),
    }
}

fn serve(cache_dir: Option<PathBuf>) -> (Server, std::net::SocketAddr) {
    let service = Arc::new(StudyService::new(registry::registry(), cache_dir, None, None));
    let server = Server::bind("127.0.0.1:0", 4, service).expect("bind ephemeral port");
    let addr = server.local_addr();
    (server, addr)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bp-serve-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn keys_are_deterministic_across_threads_and_orderings() {
    let dataset = Cli { quick: true, ..Cli::default() }.dataset();
    let args = vec!["600".to_owned(), "0".to_owned()];
    let off = SamplingConfig::disabled();
    let reference = study_key("calibrate", &dataset, &args, &off);
    // Recomputation from any thread, any number of times, agrees.
    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|| {
                for _ in 0..100 {
                    assert_eq!(study_key("calibrate", &dataset, &args, &off), reference);
                }
            });
        }
    });
    // KeyBuilder component order is canonicalized away: the same
    // components inserted in any permutation hash identically.
    let forward = CacheKey::builder()
        .component("study", "fig7")
        .component("trace_len", 1000)
        .component("args", "a b")
        .finish();
    let backward = CacheKey::builder()
        .component("args", "a b")
        .component("trace_len", 1000)
        .component("study", "fig7")
        .finish();
    assert_eq!(forward, backward);
}

#[test]
fn any_single_field_change_changes_the_key() {
    let base_cfg = DatasetConfig::standard();
    let off = SamplingConfig::disabled();
    let base = study_key("fig7", &base_cfg, &[], &off);
    assert_ne!(base, study_key("fig8", &base_cfg, &[], &off), "study name");
    assert_ne!(
        base,
        study_key("fig7", &base_cfg.with_trace_len(999_990), &[], &off),
        "trace length"
    );
    assert_ne!(
        base,
        study_key("fig7", &DatasetConfig { max_inputs: Some(1), ..base_cfg }, &[], &off),
        "input cap"
    );
    assert_ne!(base, study_key("fig7", &base_cfg, &["x".to_owned()], &off), "args");
    assert_ne!(
        base,
        study_key("fig7", &base_cfg, &[], &SamplingConfig::enabled()),
        "sampling"
    );

    let labels = vec!["gshare".to_owned(), "bimodal".to_owned()];
    let sweep_base = sweep_key("streaming", &labels, &[1, 4], 50_000);
    assert_ne!(sweep_base, sweep_key("looping", &labels, &[1, 4], 50_000), "workload");
    assert_ne!(
        sweep_base,
        sweep_key("streaming", &labels, &[1, 8], 50_000),
        "scales"
    );
    assert_ne!(
        sweep_base,
        sweep_key("streaming", &labels, &[1, 4], 50_001),
        "len"
    );
    assert_ne!(
        sweep_base,
        sweep_key("streaming", &["gshare".to_owned()], &[1, 4], 50_000),
        "predictor list"
    );
    // Predictor order is row order in the output — it stays significant.
    let reversed = vec!["bimodal".to_owned(), "gshare".to_owned()];
    assert_ne!(sweep_base, sweep_key("streaming", &reversed, &[1, 4], 50_000));
}

#[test]
fn served_study_is_byte_identical_to_direct_render_and_caches() {
    let (server, addr) = serve(None);
    let body = r#"{"study": "fig3", "quick": true, "len": 20000}"#;

    let miss = request(addr, "POST", "/run", body);
    assert_eq!(miss.status, 200, "{}", String::from_utf8_lossy(&miss.body));
    assert_eq!(miss.cache, "miss");

    // The served body is exactly Report::render() of the same study on
    // the same dataset — which is exactly the CLI's stdout.
    let cli = Cli { quick: true, len: Some(20_000), ..Cli::default() };
    let expected = registry::registry()
        .get("fig3")
        .unwrap()
        .run(&StudyCtx::new(cli.dataset()))
        .render();
    assert_eq!(miss.body, expected.as_bytes(), "served body != CLI render");

    // A repeat request hits the cache, same key, same bytes.
    let hit = request(addr, "POST", "/run", body);
    assert_eq!(hit.status, 200);
    assert_eq!(hit.cache, "hit");
    assert_eq!(hit.key, miss.key);
    assert_eq!(hit.body, miss.body);

    // JSON field order canonicalizes to the same key.
    let reordered = r#"{"len": 20000, "quick": true, "study": "fig3"}"#;
    let spelled = request(addr, "POST", "/run", reordered);
    assert_eq!(spelled.cache, "hit");
    assert_eq!(spelled.key, miss.key);

    // The cached result and its manifest are addressable by key.
    let direct = request(addr, "GET", &format!("/result/{}", miss.key), "");
    assert_eq!(direct.status, 200);
    assert_eq!(direct.body, miss.body);
    let manifest = request(addr, "GET", &format!("/result/{}/manifest", miss.key), "");
    assert_eq!(manifest.status, 200);
    let text = String::from_utf8(manifest.body).unwrap();
    assert!(text.contains("\"counters\""), "manifest lacks counters: {text}");
    assert!(text.contains("\"source\": \"serve\""), "{text}");

    server.shutdown();
}

#[test]
fn concurrent_identical_requests_execute_once() {
    let (server, addr) = serve(None);
    // A len unique to this test keeps the key fresh.
    let body = r#"{"study": "fig3", "quick": true, "len": 21000}"#;
    let replies: Vec<Reply> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| scope.spawn(|| request(addr, "POST", "/run", body)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let misses = replies.iter().filter(|r| r.cache == "miss").count();
    assert_eq!(misses, 1, "exactly one request may execute the study");
    for reply in &replies {
        assert_eq!(reply.status, 200);
        assert!(
            matches!(reply.cache.as_str(), "miss" | "join" | "hit"),
            "unexpected cache source {}",
            reply.cache
        );
        assert_eq!(reply.body, replies[0].body, "coalesced bodies must agree");
        assert_eq!(reply.key, replies[0].key);
    }
    server.shutdown();
}

#[test]
fn malformed_requests_fail_closed() {
    let (server, addr) = serve(None);
    assert_eq!(request(addr, "POST", "/run", "not json").status, 400);
    assert_eq!(request(addr, "POST", "/run", "{}").status, 400);
    assert_eq!(
        request(addr, "POST", "/run", r#"{"study": "fig3", "quikc": true}"#).status,
        400,
        "typo'd fields must not silently run (and cache) the default config"
    );
    assert_eq!(
        request(addr, "POST", "/run", r#"{"study": "zzz"}"#).status,
        404
    );
    assert_eq!(
        request(addr, "POST", "/sweep", r#"{"workload": "streaming"}"#).status,
        400,
        "sweep without predictors"
    );
    assert_eq!(request(addr, "GET", "/result/zzzz", "").status, 400);
    assert_eq!(
        request(addr, "GET", "/result/0123456789abcdef", "").status,
        404
    );
    assert_eq!(request(addr, "GET", "/run", "").status, 405);
    assert_eq!(request(addr, "POST", "/healthz", "").status, 405);
    assert_eq!(request(addr, "GET", "/nope", "").status, 404);
    // The server is still healthy after all of that.
    let health = request(addr, "GET", "/healthz", "");
    assert_eq!(health.status, 200);
    assert_eq!(health.body, b"ok\n");
    server.shutdown();
}

#[test]
fn corrupt_disk_entries_quarantine_and_regenerate_across_instances() {
    let dir = temp_dir("quarantine");
    let body = r#"{"study": "fig3", "quick": true, "len": 22000}"#;

    let (server, addr) = serve(Some(dir.clone()));
    let first = request(addr, "POST", "/run", body);
    assert_eq!(first.status, 200);
    assert_eq!(first.cache, "miss");
    server.shutdown();

    // Corrupt the persisted entry the way a torn write would.
    let path = dir.join(format!("{}.blr", first.key));
    assert!(path.exists(), "entry must have persisted to {}", path.display());
    let mut raw = std::fs::read(&path).unwrap();
    let mid = raw.len() / 2;
    raw[mid] ^= 0xff;
    std::fs::write(&path, &raw).unwrap();

    // A fresh instance must never serve the damaged bytes: it
    // quarantines, re-executes, and returns the same result as before.
    let (server, addr) = serve(Some(dir.clone()));
    let regen = request(addr, "POST", "/run", body);
    assert_eq!(regen.status, 200);
    assert_eq!(regen.cache, "miss", "corrupt entry must not serve as a hit");
    assert_eq!(regen.key, first.key);
    assert_eq!(regen.body, first.body);
    assert!(
        dir.join(format!("{}.blr.corrupt", first.key)).exists(),
        "damaged entry must be quarantined for post-mortem"
    );

    // And the regenerated entry is immediately durable again: a third
    // instance serves it from disk without executing.
    server.shutdown();
    let (server, addr) = serve(Some(dir.clone()));
    let disk = request(addr, "POST", "/run", body);
    assert_eq!(disk.status, 200);
    assert_eq!(disk.cache, "hit-disk");
    assert_eq!(disk.body, first.body);
    server.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
}
