//! Cross-crate integration tests: trace generation → prediction →
//! analysis → timing, exercised through the `branch_lab` façade.

use branch_lab::analysis::{BranchProfile, H2pCriteria};
use branch_lab::pipeline::{run, simulate, PipelineConfig};
use branch_lab::predictors::{
    measure, misprediction_flags, Bimodal, GShare, Perceptron, PerfectPredictor, PerfectSetOracle,
    Ppm, PpmConfig, Predictor, TageScL, TwoLevelLocal,
};
use branch_lab::trace::SliceConfig;
use branch_lab::workloads::{lcf_suite, specint_suite};

const LEN: usize = 60_000;

#[test]
fn every_workload_flows_through_the_full_stack() {
    for spec in specint_suite().iter().chain(lcf_suite().iter()) {
        let trace = spec.cached_trace(0, LEN);
        assert_eq!(trace.len(), LEN, "{}", spec.name);
        let mut bpu = TageScL::kb8();
        let flags = misprediction_flags(&mut bpu, &trace);
        assert_eq!(flags.len(), trace.conditional_branch_count());
        let stats = simulate(&trace, &flags, &PipelineConfig::skylake());
        assert!(stats.ipc() > 0.05, "{}: ipc {}", spec.name, stats.ipc());
        assert!(stats.ipc() < 4.0, "{}: ipc {}", spec.name, stats.ipc());
    }
}

#[test]
fn predictor_hierarchy_is_ordered_on_a_predictable_suite() {
    // On the highly-predictable xalancbmk-like workload, the predictor
    // generations should order: bimodal < gshare <= tage-sc-l < perfect.
    let spec = &specint_suite()[3];
    let trace = spec.cached_trace(0, LEN);
    let bimodal = measure(&mut Bimodal::new(12), &trace).accuracy();
    let gshare = measure(&mut GShare::new(13, 12), &trace).accuracy();
    let local = measure(&mut TwoLevelLocal::new(11, 10), &trace).accuracy();
    let perceptron = measure(&mut Perceptron::new(10, 32), &trace).accuracy();
    let ppm = measure(&mut Ppm::new(PpmConfig::default()), &trace).accuracy();
    let tage = measure(&mut TageScL::kb8(), &trace).accuracy();
    assert!(bimodal < tage, "bimodal {bimodal} vs tage {tage}");
    assert!(gshare <= tage + 0.005, "gshare {gshare} vs tage {tage}");
    assert!(ppm <= tage + 0.01, "ppm {ppm} vs tage {tage}");
    assert!(local < 1.0 && perceptron < 1.0);
    assert!(tage > 0.95, "tage accuracy {tage}");
}

#[test]
fn perfect_h2p_oracle_sits_between_tage_and_perfect() {
    let spec = &specint_suite()[1]; // mcf-like
    let trace = spec.cached_trace(0, LEN);
    let slice = SliceConfig::new(20_000);
    let mut screen = TageScL::kb8();
    let criteria = H2pCriteria::paper();
    let mut h2ps = std::collections::HashSet::new();
    for s in trace.slices(slice) {
        let p = BranchProfile::collect(&mut screen, s);
        h2ps.extend(criteria.screen(&p, slice));
    }
    assert!(!h2ps.is_empty(), "mcf-like must have H2Ps");

    let cfg = PipelineConfig::skylake();
    let tage = run(&trace, &mut TageScL::kb8(), &cfg).ipc();
    let mut oracle = PerfectSetOracle::new(TageScL::kb8(), h2ps);
    let h2p_fixed = run(&trace, &mut oracle, &cfg).ipc();
    let perfect = run(&trace, &mut PerfectPredictor, &cfg).ipc();
    assert!(
        tage < h2p_fixed && h2p_fixed <= perfect + 1e-9,
        "ordering violated: {tage} {h2p_fixed} {perfect}"
    );
    // H2Ps account for a substantial share of mcf-like's opportunity.
    let share = (h2p_fixed - tage) / (perfect - tage);
    assert!(share > 0.3, "H2P share {share}");
}

#[test]
fn misprediction_flags_match_measure_counts() {
    let spec = &specint_suite()[6];
    let trace = spec.cached_trace(0, LEN);
    let stats = measure(&mut TageScL::kb8(), &trace);
    let flags = misprediction_flags(&mut TageScL::kb8(), &trace);
    let wrong = flags.iter().filter(|&&f| f).count() as u64;
    assert_eq!(stats.total - stats.correct, wrong);
}

#[test]
fn pipeline_scaling_helps_perfect_more_than_tage() {
    let spec = &specint_suite()[8]; // xz-like
    let trace = spec.cached_trace(0, LEN);
    let base = PipelineConfig::skylake();
    let big = base.scaled(8);
    let tage_gain = {
        let a = run(&trace, &mut TageScL::kb8(), &base).ipc();
        let b = run(&trace, &mut TageScL::kb8(), &big).ipc();
        b / a
    };
    let perfect_gain = {
        let a = run(&trace, &mut PerfectPredictor, &base).ipc();
        let b = run(&trace, &mut PerfectPredictor, &big).ipc();
        b / a
    };
    assert!(
        perfect_gain > tage_gain,
        "perfect {perfect_gain:.2}x vs tage {tage_gain:.2}x"
    );
}

#[test]
fn storage_budgets_report_consistent_bits() {
    use branch_lab::predictors::TageSclConfig;
    let mut last = 0usize;
    for kb in TageSclConfig::STORAGE_POINTS_KB {
        let p = TageScL::new(TageSclConfig::storage_kb(kb));
        let bits = p.storage_bits();
        assert!(bits > last, "storage must grow with budget");
        last = bits;
    }
}

#[test]
fn traces_are_deterministic_across_the_facade() {
    let spec = &lcf_suite()[0];
    let a = spec.trace(0, 20_000);
    let b = spec.trace(0, 20_000);
    assert_eq!(a.insts(), b.insts());
    // And predictions over them too.
    let fa = misprediction_flags(&mut TageScL::kb8(), &a);
    let fb = misprediction_flags(&mut TageScL::kb8(), &b);
    assert_eq!(fa, fb);
}
