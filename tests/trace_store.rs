//! TraceStore and parallel-engine guarantees: cached traces are
//! bit-identical to direct generation (memory and disk paths), generation
//! happens exactly once, oversized workload names fail loudly instead of
//! being truncated, and the parallel studies match the serial path
//! bit-for-bit.

use std::sync::atomic::{AtomicU32, Ordering};

use branch_lab::core::{
    characterize_workload_with, rare_oracle_study_with, scaling_study_with,
    storage_scaling_study_with, DatasetConfig, Engine,
};
use branch_lab::predictors::TageScL;
use branch_lab::trace::{RetiredInst, Trace, TraceMeta, WriteTraceError};
use branch_lab::workloads::{lcf_suite, specint_suite, TraceStore};

/// A fresh private directory under the system temp dir.
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "branch-lab-test-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn memory_path_is_bit_identical_to_direct_generation() {
    let spec = &specint_suite()[2];
    let store = TraceStore::new();
    let cached = store.get(spec, 0, 25_000);
    let direct = spec.trace(0, 25_000);
    assert_eq!(cached.meta(), direct.meta());
    assert_eq!(cached.insts(), direct.insts());
}

#[test]
fn disk_path_is_bit_identical_and_counted() {
    let dir = scratch_dir("disk");
    let spec = &lcf_suite()[0];
    let direct = spec.trace(0, 20_000);

    // First store generates and persists.
    let writer = TraceStore::with_cache_dir(&dir);
    let first = writer.get(spec, 0, 20_000);
    assert_eq!(writer.stats().generated, 1);
    assert_eq!(writer.stats().disk_loads, 0);
    assert_eq!(first.insts(), direct.insts());

    // A second store over the same directory loads instead of generating.
    let reader = TraceStore::with_cache_dir(&dir);
    let reloaded = reader.get(spec, 0, 20_000);
    assert_eq!(reader.stats().generated, 0, "should load from disk");
    assert_eq!(reader.stats().disk_loads, 1);
    assert_eq!(reloaded.meta(), direct.meta());
    assert_eq!(reloaded.insts(), direct.insts());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_corrupt_cache_file_falls_back_to_generation() {
    let dir = scratch_dir("corrupt");
    let spec = &lcf_suite()[2];
    let writer = TraceStore::with_cache_dir(&dir);
    let good = writer.get(spec, 0, 10_000);
    // Truncate every cached file.
    for entry in std::fs::read_dir(&dir).expect("read dir") {
        let path = entry.expect("entry").path();
        std::fs::write(&path, b"BPTR").expect("truncate");
    }
    let reader = TraceStore::with_cache_dir(&dir);
    let regenerated = reader.get(spec, 0, 10_000);
    assert_eq!(reader.stats().generated, 1);
    assert_eq!(reader.stats().disk_loads, 0);
    assert_eq!(reader.stats().corrupt, 1, "damage must be counted");
    assert_eq!(regenerated.insts(), good.insts());
    // The damaged file was quarantined for post-mortems, not deleted.
    let quarantined = std::fs::read_dir(&dir)
        .expect("read dir")
        .filter(|e| {
            // Quarantine names are uniquely suffixed: `<file>.corrupt-<n>`.
            e.as_ref()
                .expect("entry")
                .file_name()
                .to_str()
                .is_some_and(|n| n.contains(".corrupt"))
        })
        .count();
    assert_eq!(quarantined, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn each_trace_is_generated_at_most_once_per_process() {
    let store = TraceStore::new();
    let spec = &specint_suite()[4];
    std::thread::scope(|s| {
        for _ in 0..6 {
            s.spawn(|| {
                for _ in 0..3 {
                    let _ = store.get(spec, 0, 8_000);
                }
            });
        }
    });
    let stats = store.stats();
    assert_eq!(stats.generated, 1, "{stats:?}");
    // Every thread's repeat gets are guaranteed memory hits; first gets may
    // either hit or wait on the in-flight generation.
    assert!(stats.hits >= 12, "{stats:?}");
}

#[test]
fn oversized_workload_names_are_rejected_not_truncated() {
    let long_name = "x".repeat(usize::from(u16::MAX) + 1);
    let mut trace = Trace::new(TraceMeta::new(long_name, 0));
    trace.push(RetiredInst::cond_branch(0x400, true, 0, None, None));
    let err = trace.write_to(Vec::new()).expect_err("must reject long name");
    match err {
        WriteTraceError::NameTooLong(n) => assert_eq!(n, usize::from(u16::MAX) + 1),
        WriteTraceError::Io(e) => panic!("expected NameTooLong, got Io: {e}"),
    }
}

#[test]
fn max_length_workload_names_round_trip() {
    let name = "y".repeat(usize::from(u16::MAX));
    let mut trace = Trace::new(TraceMeta::new(name.clone(), 7));
    trace.push(RetiredInst::cond_branch(0x400, false, 0, None, None));
    let mut bytes = Vec::new();
    trace.write_to(&mut bytes).expect("max-length name fits");
    let back = Trace::read_from(bytes.as_slice()).expect("deserialize");
    assert_eq!(back.meta().name, name);
    assert_eq!(back.meta().input, 7);
    assert_eq!(back.insts(), trace.insts());
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn parallel_scaling_study_matches_serial_exactly() {
    let specs = vec![specint_suite()[1].clone(), specint_suite()[6].clone()];
    let cfg = DatasetConfig::quick();
    let serial = scaling_study_with(Engine::with_threads(1), &specs, &cfg);
    let parallel = scaling_study_with(Engine::with_threads(4), &specs, &cfg);
    assert_eq!(serial.scales, parallel.scales);
    for (s, p) in serial.series.iter().zip(&parallel.series) {
        assert_eq!(s.label, p.label);
        assert_eq!(bits(&s.relative_ipc), bits(&p.relative_ipc), "{}", s.label);
    }
}

#[test]
fn parallel_storage_and_rare_studies_match_serial_exactly() {
    let specs = vec![lcf_suite()[1].clone(), lcf_suite()[5].clone()];
    let cfg = DatasetConfig::quick();

    let serial = storage_scaling_study_with(Engine::with_threads(1), &specs, &cfg);
    let parallel = storage_scaling_study_with(Engine::with_threads(4), &specs, &cfg);
    assert_eq!(serial.storages_kb, parallel.storages_kb);
    for (s, p) in serial.rows.iter().zip(&parallel.rows) {
        assert_eq!(s.name, p.name);
        for (sg, pg) in s.gap_closed.iter().zip(&p.gap_closed) {
            assert_eq!(bits(sg), bits(pg), "{}", s.name);
        }
    }

    let serial = rare_oracle_study_with(Engine::with_threads(1), &specs, &cfg);
    let parallel = rare_oracle_study_with(Engine::with_threads(4), &specs, &cfg);
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.name, p.name);
        assert_eq!(s.remaining_after_1000.to_bits(), p.remaining_after_1000.to_bits());
        assert_eq!(s.remaining_after_100.to_bits(), p.remaining_after_100.to_bits());
    }
}

#[test]
fn parallel_characterization_matches_serial_exactly() {
    let spec = &specint_suite()[1];
    let cfg = DatasetConfig {
        max_inputs: Some(3),
        ..DatasetConfig::quick()
    };
    let serial = characterize_workload_with(Engine::with_threads(1), spec, &cfg, TageScL::kb8);
    let parallel = characterize_workload_with(Engine::with_threads(3), spec, &cfg, TageScL::kb8);
    assert_eq!(serial.inputs.len(), parallel.inputs.len());
    assert_eq!(serial.avg_accuracy.to_bits(), parallel.avg_accuracy.to_bits());
    assert_eq!(
        serial.avg_h2p_mispredict_share.to_bits(),
        parallel.avg_h2p_mispredict_share.to_bits()
    );
    assert_eq!(serial.h2p_union, parallel.h2p_union);
    assert_eq!(serial.h2p_3plus_inputs, parallel.h2p_3plus_inputs);
}
