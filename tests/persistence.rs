//! Trace-library workflow (§V-B): generate traces, persist them, reload,
//! and verify every analysis sees identical data.

use branch_lab::analysis::BranchProfile;
use branch_lab::predictors::{misprediction_flags, TageScL};
use branch_lab::trace::Trace;
use branch_lab::workloads::specint_suite;

#[test]
fn persisted_traces_are_bit_identical() {
    let spec = &specint_suite()[1];
    let trace = spec.cached_trace(0, 30_000);
    let mut bytes = Vec::new();
    trace.write_to(&mut bytes).expect("serialize");
    let back = Trace::read_from(bytes.as_slice()).expect("deserialize");
    assert_eq!(back.meta(), trace.meta());
    assert_eq!(back.insts(), trace.insts());
}

#[test]
fn analyses_agree_on_reloaded_traces() {
    let spec = &specint_suite()[6];
    let trace = spec.cached_trace(0, 30_000);
    let mut bytes = Vec::new();
    trace.write_to(&mut bytes).expect("serialize");
    let back = Trace::read_from(bytes.as_slice()).expect("deserialize");

    let p1 = BranchProfile::collect(&mut TageScL::kb8(), trace.insts());
    let p2 = BranchProfile::collect(&mut TageScL::kb8(), back.insts());
    assert_eq!(p1.total_execs(), p2.total_execs());
    assert_eq!(p1.total_mispredicts(), p2.total_mispredicts());

    let f1 = misprediction_flags(&mut TageScL::kb8(), &trace);
    let f2 = misprediction_flags(&mut TageScL::kb8(), &back);
    assert_eq!(f1, f2);
}

#[test]
fn generated_programs_disassemble_with_planted_annotations() {
    let spec = &specint_suite()[1]; // mcf-like: has vg + dd H2Ps
    let program = spec.program();
    let text = program.disasm();
    assert!(text.contains("; vg-h2p"));
    assert!(text.contains("; dd-h2p"));
    // Every annotated IP corresponds to a conditional branch line.
    for (ip, _) in program.annotated_ips() {
        assert!(
            text.contains(&format!("{ip:#08x}  br.")),
            "annotation at {ip:#x} should sit on a conditional branch"
        );
    }
}
