//! Reproduction tests: the paper's qualitative claims must hold at test
//! scale. Each test cites the section/figure it guards.

use branch_lab::analysis::{
    accuracy_spread, compute_alloc_stats, paper_equivalent, rank_heavy_hitters, BinSpec,
    BranchProfile, H2pCriteria, RecurrenceAnalysis,
};
use branch_lab::core::{characterize_workload, DatasetConfig};
use branch_lab::predictors::{measure, TageScL, TageSclConfig};
use branch_lab::trace::SliceConfig;
use branch_lab::workloads::{lcf_suite, specint_suite};

/// §III-A / Table I: a small number of H2Ps owns a disproportionate share
/// of mispredictions, and excluding them lifts accuracy markedly.
#[test]
fn h2ps_own_a_disproportionate_misprediction_share() {
    let spec = &specint_suite()[1]; // mcf-like: paper reports 96.9%
    let c = characterize_workload(spec, &DatasetConfig::quick(), TageScL::kb8);
    assert!(
        c.avg_h2p_mispredict_share > 0.6,
        "mcf-like H2P share {}",
        c.avg_h2p_mispredict_share
    );
    assert!(c.avg_accuracy_excl_h2p > c.avg_accuracy + 0.02);
    // The H2P count itself is small.
    assert!(c.avg_h2p_per_slice < 40.0);
}

/// Table I: the accuracy ordering across benchmarks holds — xalancbmk-like
/// is the most predictable, leela-like among the least.
#[test]
fn specint_accuracy_ordering_matches_table1() {
    let len = 120_000;
    let acc = |idx: usize| {
        let spec = &specint_suite()[idx];
        measure(&mut TageScL::kb8(), &spec.cached_trace(0, len)).accuracy()
    };
    let xalanc = acc(3);
    let leela = acc(6);
    let mcf = acc(1);
    assert!(xalanc > 0.97, "xalancbmk-like {xalanc}");
    assert!(leela < xalanc - 0.08, "leela {leela} vs xalanc {xalanc}");
    assert!(mcf < xalanc - 0.05, "mcf {mcf} vs xalanc {xalanc}");
}

/// Fig. 2: the top heavy hitters cover a large cumulative fraction of
/// mispredictions.
#[test]
fn heavy_hitters_concentrate_mispredictions() {
    let spec = &specint_suite()[8]; // xz-like: paper reports 80.5% from 10 H2Ps
    let trace = spec.cached_trace(0, 150_000);
    let slice = SliceConfig::new(30_000);
    let mut bpu = TageScL::kb8();
    let criteria = H2pCriteria::paper();
    let mut merged = BranchProfile::new();
    let mut h2ps = std::collections::HashSet::new();
    for s in trace.slices(slice) {
        let p = BranchProfile::collect(&mut bpu, s);
        h2ps.extend(criteria.screen(&p, slice));
        merged.merge(&p);
    }
    let hitters = rank_heavy_hitters(&merged, h2ps.iter().copied());
    assert!(hitters.len() >= 3);
    let frac = hitters
        .iter()
        .take(10)
        .next_back()
        .map(|h| h.cumulative_fraction)
        .unwrap_or(0.0);
    assert!(frac > 0.4, "top-10 coverage {frac}");
}

/// §III-B / Fig. 3: LCF applications are rare-branch dominated — most
/// static branches execute under 1,000 paper-equivalent times.
#[test]
fn lcf_is_rare_branch_dominated() {
    let spec = &lcf_suite()[1]; // game-like
    let trace = spec.cached_trace(0, 150_000);
    let profile = BranchProfile::collect(&mut TageScL::kb8(), trace.insts());
    let window = profile.instructions;
    let hist = BinSpec::executions()
        .histogram(profile.iter().map(|(_, s)| paper_equivalent(s.execs, window)));
    let under_1k = hist.fraction_of("0-100") + hist.fraction_of("100-1K");
    assert!(under_1k > 0.7, "rare fraction {under_1k}");
    // And the suite's static footprint dwarfs SPECint-like workloads.
    assert!(profile.static_branch_count() > 2_000);
}

/// Fig. 4: rare branches have a wide accuracy spread that collapses with
/// execution count.
#[test]
fn accuracy_spread_narrows_with_executions() {
    let spec = &lcf_suite()[1];
    let trace = spec.cached_trace(0, 200_000);
    let profile = BranchProfile::collect(&mut TageScL::kb8(), trace.insts());
    let bins = accuracy_spread(&profile, 100.0, 15_000.0);
    // At this trace scale one execution is ~150 paper-equivalents, so the
    // first *populated* bin is the rare-branch bin.
    let first = bins.first().expect("rare bin populated");
    assert!(first.lo <= 300.0 && first.stddev > 0.2, "first bin {first:?}");
    let late: Vec<_> = bins.iter().filter(|b| b.lo >= 1_000.0 && b.n >= 3).collect();
    if let Some(l) = late.first() {
        assert!(
            l.stddev < first.stddev,
            "spread should narrow: {} vs {}",
            l.stddev,
            first.stddev
        );
    }
}

/// §IV-A: H2P branches thrash TAGE's tables — orders of magnitude more
/// allocations than ordinary branches, with entries recycled.
#[test]
fn h2ps_thrash_tage_tables() {
    let spec = &specint_suite()[6]; // leela-like
    let trace = spec.cached_trace(0, 150_000);
    let slice = SliceConfig::new(30_000);
    let mut bpu = TageScL::kb8();
    bpu.enable_instrumentation();
    let criteria = H2pCriteria::paper();
    let mut h2ps = std::collections::HashSet::new();
    for s in trace.slices(slice) {
        let p = BranchProfile::collect(&mut bpu, s);
        h2ps.extend(criteria.screen(&p, slice));
    }
    let stats = compute_alloc_stats(bpu.tracker().unwrap(), &h2ps);
    assert!(stats.h2p_count > 0);
    assert!(
        stats.h2p_median_allocations > 5 * stats.other_median_allocations.max(1),
        "{stats:?}"
    );
    assert!(stats.h2p_mean_allocation_share > stats.other_mean_allocation_share * 10.0);
}

/// §IV-B / Fig. 7: for LCF applications, growing storage 8KB -> 64KB gives
/// the main accuracy step, after which returns plateau.
#[test]
fn storage_scaling_plateaus_after_64kb() {
    let spec = &lcf_suite()[1]; // game-like
    let trace = spec.cached_trace(0, 250_000);
    let a8 = measure(&mut TageScL::kb8(), &trace).accuracy();
    let a64 = measure(&mut TageScL::kb64(), &trace).accuracy();
    let a1024 = measure(&mut TageScL::new(TageSclConfig::storage_kb(1024)), &trace).accuracy();
    assert!(a64 > a8, "64KB ({a64}) must beat 8KB ({a8})");
    let first_step = a64 - a8;
    let rest = a1024 - a64;
    assert!(
        rest < first_step,
        "8->64 gain {first_step} should dominate 64->1024 gain {rest}"
    );
    // Even 1024KB leaves most of the misprediction mass (irreducibly rare
    // branches): far from perfect.
    assert!(a1024 < 0.9, "1024KB accuracy {a1024}");
}

/// Fig. 9: median recurrence intervals show long-timescale structure.
#[test]
fn recurrence_intervals_have_longscale_mass() {
    let spec = &lcf_suite()[0];
    let trace = spec.cached_trace(0, 200_000);
    let rec = RecurrenceAnalysis::compute(&trace);
    let hist = rec.histogram(trace.len() as u64);
    // Substantial mass beyond 10K paper-equivalent instructions.
    let long: f64 = hist
        .labels()
        .iter()
        .zip(hist.fractions())
        .filter(|(l, _)| {
            ["10K-100K", "100K-1M", "1M-2M", "2M-4M", "4M-8M", "8M-16M", "16M-32M"]
                .contains(&l.as_str())
        })
        .map(|(_, f)| f)
        .sum();
    assert!(long > 0.3, "long-interval mass {long}");
}

/// §III-A: H2P sites recur across application inputs (program structure is
/// input-independent), enabling offline training.
#[test]
fn h2p_sites_recur_across_inputs() {
    let spec = &specint_suite()[6];
    let cfg = DatasetConfig {
        max_inputs: Some(3),
        ..DatasetConfig::quick()
    };
    let c = characterize_workload(spec, &cfg, TageScL::kb8);
    assert!(c.h2p_3plus_inputs > 0, "union {}", c.h2p_union.len());
}
