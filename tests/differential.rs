//! Differential suite: the heterogeneous lockstep sweep path against
//! solo scalar references.
//!
//! The single-pass grid study trains every registered
//! [`PredictorSpec`] as a lane in one lockstep walk of the trace and
//! replays all misprediction streams through the lane-vector pipeline.
//! Both halves must be *behaviour-preserving*: each predictor must
//! observe exactly the branch sequence a solo run observes, and each
//! replay lane must compute exactly the cycles a scalar
//! [`simulate`](branch_lab::pipeline::simulate) call computes. This
//! suite proves both over a seeded workload matrix:
//!
//! * every spec in [`PredictorSpec::hetero_grid`] is trained lockstep
//!   and solo, with [`state_digest`](DirectionPredictor::state_digest)
//!   compared at every stream checkpoint (~16K branches) and the flag
//!   streams compared branch-for-branch;
//! * the lane replay is compared against the scalar path for mixed lane
//!   groups (16 lanes and a ragged 19), at several pipeline scales, and
//!   under the `u64` cycle-word fallback;
//! * a trace prepared from a block-wise disk stream replays identically
//!   to one prepared from the in-memory trace.

use branch_lab::pipeline::{simulate, PipelineConfig, SweepReplay};
use branch_lab::predictors::{
    sweep_flags, sweep_flags_stream, sweep_flags_stream_observed, PredictorSpec,
};
use branch_lab::workloads::{lcf_suite, specint_suite, TraceStore, WorkloadSpec};

/// Replay-differential trace length: enough dynamic branches to exercise
/// TAGE allocation and every lane-chunk shape, cheap enough to replay at
/// many scales.
const TRACE_LEN: usize = 60_000;

/// Lockstep-digest trace length: long enough that every workload crosses
/// several 16K-branch stream blocks, giving multiple mid-stream digest
/// checkpoints before the final state compare.
const LOCKSTEP_LEN: usize = 300_000;

/// The seeded workload matrix: (generator, input seed) pairs drawn from
/// both suites. Each pair generates a deterministic trace, so the whole
/// suite is reproducible bit-for-bit.
fn matrix() -> Vec<(WorkloadSpec, u32)> {
    let si = specint_suite();
    let lcf = lcf_suite();
    vec![
        (si[1].clone(), 0),
        (si[6].clone(), 1),
        (lcf[0].clone(), 0),
        (lcf[3].clone(), 0),
    ]
}

#[test]
fn lockstep_sweep_matches_solo_replay_for_every_spec() {
    let specs = PredictorSpec::hetero_grid();
    for (wl, input) in matrix() {
        let trace = wl.trace(input, LOCKSTEP_LEN);

        // Lockstep: all specs in one walk, digests at every checkpoint.
        let mut lockstep = PredictorSpec::build_all(&specs);
        let mut checkpoints: Vec<(usize, Vec<u64>)> = Vec::new();
        let flags =
            sweep_flags_stream_observed(&mut lockstep, trace.reader(), |seen, predictors| {
                checkpoints.push((
                    seen,
                    predictors.iter().map(|p| p.state_digest()).collect(),
                ));
            })
            .expect("in-memory reader cannot fail");
        assert!(
            checkpoints.len() >= 3,
            "{}/{input}: need several checkpoints, got {}",
            wl.name,
            checkpoints.len()
        );

        // Solo: each spec alone, pausing at the same branch counts.
        for (i, spec) in specs.iter().enumerate() {
            let mut solo = spec.build();
            let mut next = checkpoints.iter().peekable();
            let mut n = 0usize;
            for br in trace.conditional_branches() {
                let miss = solo.predict_and_train(br.ip, br.taken) != br.taken;
                assert_eq!(
                    miss,
                    flags[i][n],
                    "{}/{input}/{}: flag diverged at branch {n}",
                    wl.name,
                    spec.label()
                );
                n += 1;
                if next.peek().is_some_and(|(at, _)| *at == n) {
                    let (_, digests) = next.next().unwrap();
                    assert_eq!(
                        solo.state_digest(),
                        digests[i],
                        "{}/{input}/{}: state diverged by branch {n}",
                        wl.name,
                        spec.label()
                    );
                }
            }
            assert_eq!(n, flags[i].len(), "{}/{input}: flag stream length", wl.name);
            assert_eq!(
                solo.state_digest(),
                lockstep[i].state_digest(),
                "{}/{input}/{}: final state diverged after {n} branches",
                wl.name,
                spec.label()
            );
        }
    }
}

#[test]
fn stateful_specs_produce_live_digests() {
    let trace = specint_suite()[1].trace(0, 20_000);
    for spec in PredictorSpec::hetero_grid() {
        let mut p = spec.build();
        let before = p.state_digest();
        for br in trace.conditional_branches() {
            let _ = p.predict_and_train(br.ip, br.taken);
        }
        let stateless = matches!(
            spec,
            PredictorSpec::AlwaysTaken | PredictorSpec::Perfect
        );
        if stateless {
            assert_eq!(p.state_digest(), 0, "{}: oracle digest", spec.label());
        } else {
            assert_ne!(
                p.state_digest(),
                before,
                "{}: training must move the digest",
                spec.label()
            );
            assert_ne!(p.state_digest(), 0, "{}: degenerate digest", spec.label());
        }
    }
}

/// Replays `lanes` through the hetero lane path and the scalar reference
/// at each scale, asserting exact [`SimStats`] equality.
fn assert_lanes_match_scalar(
    wl: &WorkloadSpec,
    input: u32,
    lanes: &[&[bool]],
    base: &PipelineConfig,
    scales: &[u32],
) {
    let trace = wl.trace(input, TRACE_LEN);
    let sweep = SweepReplay::prepare(trace.reader(), base).expect("in-memory prepare");
    for &scale in scales {
        let cfg = base.scaled(scale);
        let many = sweep.simulate_many(lanes, &cfg);
        for (k, lane) in lanes.iter().enumerate() {
            assert_eq!(
                many[k],
                simulate(&trace, lane, &cfg),
                "{}/{input}: lane {k}/{} diverged from scalar at {scale}x",
                wl.name,
                lanes.len()
            );
        }
    }
}

#[test]
fn hetero_lane_replay_matches_scalar_simulate() {
    let specs = PredictorSpec::hetero_grid();
    for (wl, input) in matrix() {
        let trace = wl.trace(input, TRACE_LEN);
        let mut predictors = PredictorSpec::build_all(&specs);
        let flags = sweep_flags(&mut predictors, &trace);

        // The full 16-spec group (one 16-wide chunk), then a ragged 19
        // (16 + 2 + 1 chunks) built by repeating three streams.
        let full: Vec<&[bool]> = flags.iter().map(Vec::as_slice).collect();
        let mut ragged = full.clone();
        ragged.extend([&full[0], &full[7], &full[15]]);
        let base = PipelineConfig::skylake();
        assert_lanes_match_scalar(&wl, input, &full, &base, &[1, 8, 32]);
        assert_lanes_match_scalar(&wl, input, &ragged, &base, &[4]);
    }
}

#[test]
fn u64_cycle_fallback_matches_scalar_simulate() {
    let (wl, input) = (&lcf_suite()[1], 0);
    let trace = wl.trace(input, TRACE_LEN);
    let specs = [
        PredictorSpec::parse("gshare").expect("known label"),
        PredictorSpec::parse("tage-sc-l-8kb").expect("known label"),
        PredictorSpec::AlwaysTaken,
    ];
    let mut predictors = PredictorSpec::build_all(&specs);
    let flags = sweep_flags(&mut predictors, &trace);
    let lanes: Vec<&[bool]> = flags.iter().map(Vec::as_slice).collect();

    // A penalty this large overflows u32 cycle words within a few
    // thousand mispredictions, forcing the exact u64 fallback.
    let mut base = PipelineConfig::skylake();
    base.mispredict_penalty = u32::MAX / 2;
    assert_lanes_match_scalar(wl, input, &lanes, &base, &[1, 2]);
}

#[test]
fn streamed_prepare_and_sweep_match_in_memory() {
    let dir = std::env::temp_dir().join(format!("branch-lab-differential-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let store = TraceStore::with_cache_dir(&dir);
    let wl = &lcf_suite()[2];
    // First get() persists the trace so stream() below reads from disk.
    let trace = store.get(wl, 0, TRACE_LEN);

    let specs = PredictorSpec::hetero_grid();
    let mut mem_preds = PredictorSpec::build_all(&specs);
    let mem_flags = sweep_flags(&mut mem_preds, &trace);
    let mut stream_preds = PredictorSpec::build_all(&specs);
    let stream_flags =
        sweep_flags_stream(&mut stream_preds, store.stream(wl, 0, TRACE_LEN))
            .expect("stream trace for sweep");
    assert_eq!(mem_flags, stream_flags, "flag streams diverged");
    for (i, (m, s)) in mem_preds.iter().zip(&stream_preds).enumerate() {
        assert_eq!(
            m.state_digest(),
            s.state_digest(),
            "{}: predictor state diverged between prepare paths",
            specs[i].label()
        );
    }

    let base = PipelineConfig::skylake();
    let mem_sweep = SweepReplay::prepare(trace.reader(), &base).expect("in-memory prepare");
    let disk_sweep =
        SweepReplay::prepare(store.stream(wl, 0, TRACE_LEN), &base).expect("streamed prepare");
    let lanes: Vec<&[bool]> = mem_flags.iter().map(Vec::as_slice).collect();
    for scale in [1, 16] {
        assert_eq!(
            mem_sweep.simulate_many(&lanes, &base.scaled(scale)),
            disk_sweep.simulate_many(&lanes, &base.scaled(scale)),
            "streamed prepare diverged at {scale}x"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
