//! End-to-end guarantees of the fault-tolerant executor
//! (`bp_core::exec`) and the cooperative-cancellation plumbing beneath
//! it: a cancelled sweep stops at the next block checkpoint instead of
//! finishing the trace, deadlines reach into the replay hot loops, the
//! engine classifies cancellation as an orderly stop (never retried),
//! and an interrupted-then-resumed task fleet merges to manifests
//! byte-identical to an uninterrupted run at any thread count.
//!
//! Cancel scopes, fault plans and metrics counters are process-global,
//! so every test here serializes behind one gate.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use branch_lab::core::exec::{self, Backoff, ExecOptions, Outcome, Task};
use branch_lab::core::{cancel, faultpoint, Engine};
use branch_lab::metrics::{merge_manifests_with_children, normalize, Counter, CounterBaseline};
use branch_lab::pipeline::{PipelineConfig, SweepReplay};
use branch_lab::predictors::{sweep_flags_stream_observed, DirectionPredictor, PredictorSpec};
use branch_lab::trace::{BptrReader, RetiredInst, Trace, TraceMeta, BLOCK_RECORDS};

fn gate() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A fresh private directory under the system temp dir.
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "branch-lab-exec-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A trace of `n` conditional branches with a noisy-but-deterministic
/// direction stream.
fn branchy_trace(n: u64) -> Trace {
    let mut t = Trace::new(TraceMeta::new("exec-test", 0));
    for i in 0..n {
        let taken = (i.wrapping_mul(2_654_435_761) >> 7) % 5 < 3;
        t.push(RetiredInst::cond_branch(0x40_0000 + (i % 211) * 4, taken, 0x80_0000, Some(1), None));
    }
    t
}

#[test]
fn cancelled_sweep_stops_at_the_next_block_checkpoint() {
    let _g = gate();
    // 2.5 codec blocks; an uncancelled sweep would observe every block
    // up to 163840 branches.
    let total = BLOCK_RECORDS as u64 * 5 / 2;
    let mut bytes = Vec::new();
    branchy_trace(total).write_to(&mut bytes).expect("serialize");

    let token = cancel::CancelToken::new();
    let _scope = cancel::set_scope(token.clone());
    let observed_max = AtomicUsize::new(0);
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut predictors: Vec<Box<dyn DirectionPredictor>> =
            vec![PredictorSpec::parse("gshare").expect("known predictor").build()];
        let reader = BptrReader::new(bytes.as_slice()).expect("header");
        sweep_flags_stream_observed(&mut predictors, reader, |n, _| {
            observed_max.store(n, Ordering::Relaxed);
            if n >= 16_384 {
                token.cancel("test stop");
            }
        })
    }));
    let payload = result.expect_err("cancelled sweep must unwind");
    let cancelled = payload.downcast_ref::<cancel::Cancelled>().expect("Cancelled payload");
    assert!(cancelled.reason.contains("test stop"), "{}", cancelled.reason);
    assert!(cancelled.reason.contains("sweep.train"), "{}", cancelled.reason);
    let seen = observed_max.load(Ordering::Relaxed);
    assert!(
        (16_384..=BLOCK_RECORDS).contains(&seen),
        "training must stop within the chunk that observed the cancel, got {seen} of {total}"
    );
}

#[test]
fn pre_cancelled_scope_stops_replay_immediately() {
    let _g = gate();
    let trace = branchy_trace(100_000);
    let config = PipelineConfig::skylake();
    let replay = SweepReplay::new(&trace, &config);
    let flags = vec![false; trace.len()];

    let token = cancel::CancelToken::new();
    token.cancel("expired before replay");
    let _scope = cancel::set_scope(token);
    let result = catch_unwind(AssertUnwindSafe(|| replay.simulate(&flags, &config)));
    let payload = result.expect_err("replay under a cancelled scope must unwind");
    let cancelled = payload.downcast_ref::<cancel::Cancelled>().expect("Cancelled payload");
    assert!(cancelled.reason.contains("expired before replay"), "{}", cancelled.reason);
    assert!(cancelled.reason.contains("sweep."), "{}", cancelled.reason);
}

#[test]
fn executor_deadline_interrupts_a_replay_loop_and_reports_structured_failure() {
    let _g = gate();
    let trace = branchy_trace(100_000);
    let config = PipelineConfig::skylake();
    let replay = SweepReplay::new(&trace, &config);
    let flags = vec![false; trace.len()];

    let started = Instant::now();
    let tasks = vec![Task::new("endless-replay", |_: &cancel::CancelToken| {
        // Replays forever: only the deadline (watchdog → token → block
        // checkpoint inside `simulate`) can stop it.
        loop {
            let stats = replay.simulate(&flags, &config);
            assert!(stats.ipc() > 0.0);
        }
    })];
    let opts = ExecOptions {
        deadline: Some(Duration::from_millis(100)),
        backoff: Backoff::new(Duration::ZERO, 0),
        ..ExecOptions::default()
    };
    let reports = exec::run(tasks, &opts);
    match &reports[0].outcome {
        Outcome::Failed(detail) => {
            assert!(detail.contains("cancelled"), "{detail}");
            assert!(detail.contains("deadline expired"), "{detail}");
        }
        other => panic!("expected deadline failure, got {other:?}"),
    }
    assert_eq!(reports[0].attempts, 1, "no retries configured");
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "deadline must interrupt the loop promptly"
    );
}

#[test]
fn engine_under_a_cancelled_scope_stops_orderly_and_never_retries() {
    let _g = gate();
    let token = cancel::CancelToken::new();
    token.cancel("fleet shutdown");
    let _scope = cancel::set_scope(token);
    let items: Vec<u32> = (0..12).collect();
    let out = Engine::with_threads(3).try_map_with(&items, 5, |i, _| format!("t{i}"), |_, &x| x);
    for r in &out {
        let e = r.as_ref().expect_err("every task sees the cancelled scope");
        assert!(e.cancelled, "classified as cancellation: {e}");
        assert_eq!(e.attempts, 1, "cancelled tasks must not burn retries");
        assert!(e.message.contains("fleet shutdown"), "{}", e.message);
    }
}

/// One synthetic "study": deterministic counter increments plus a
/// parallel engine map, with a per-task delta manifest written to `dir`
/// — the same shape the `all` runner gives real studies.
fn fleet_tasks<'a>(dir: &'a Path, threads: usize) -> Vec<Task<'a>> {
    ["alpha", "beta", "gamma"]
        .into_iter()
        .map(move |name| {
            Task::new(name, move |_: &cancel::CancelToken| {
                let baseline = CounterBaseline::take();
                let items: Vec<u64> = (0..257).collect();
                let squares = Engine::with_threads(threads).map(&items, |_, &x| x * x);
                Counter::get(&format!("study.{name}.checksum"))
                    .add(squares.iter().sum::<u64>() % 10_007);
                Counter::get(&format!("study.{name}.items")).add(items.len() as u64);
                let info = BTreeMap::from([("quick".to_string(), "true".to_string())]);
                baseline
                    .capture_delta(name, info)
                    .write_to_sink(dir)
                    .map_err(|e| e.to_string())
            })
        })
        .collect()
}

/// Runs a fleet pass over `dir` and returns the merged manifest
/// (normalized), mirroring the `all` runner's merge.
fn run_fleet(dir: &Path, threads: usize, resume: bool) -> String {
    let opts = ExecOptions {
        retries: 1,
        backoff: Backoff::new(Duration::ZERO, 0),
        keep_going: true,
        checkpoint: Some(dir.join("fleet.checkpoint")),
        resume,
        fault_prefix: Some("test.child".to_string()),
        ..ExecOptions::default()
    };
    let reports = exec::run(fleet_tasks(dir, threads), &opts);
    let runs: Vec<String> = reports
        .iter()
        .filter(|r| r.outcome.is_success())
        .map(|r| {
            std::fs::read_to_string(dir.join(format!("{}.json", r.name))).expect("manifest")
        })
        .collect();
    let children: Vec<(String, String, u32)> = reports
        .iter()
        .map(|r| (r.name.clone(), r.outcome.merged_status(), r.attempts))
        .collect();
    let merged = merge_manifests_with_children(&runs, &children).expect("merge");
    normalize(&merged).expect("normalize")
}

#[test]
fn interrupted_then_resumed_fleet_matches_a_clean_run_byte_for_byte() {
    let _g = gate();
    branch_lab::metrics::force_enable();

    // Clean reference run, single-threaded engine.
    let clean_dir = scratch_dir("clean");
    let clean = run_fleet(&clean_dir, 1, false);

    // Chaos run at a different thread count: beta's task fails both
    // attempts (injected before its body, like a crashed child), then
    // the fault clears and `--resume` finishes the fleet.
    let chaos_dir = scratch_dir("chaos");
    faultpoint::install_for_tests(Some("test.child.beta:fail"));
    let interrupted = run_fleet(&chaos_dir, 4, false);
    faultpoint::install_for_tests(None);
    assert!(
        interrupted.contains("failed: injected fault: child failure"),
        "interrupted merge must record the failure: {interrupted}"
    );
    assert_ne!(clean, interrupted, "partial merge must differ from the clean one");

    let resumed = run_fleet(&chaos_dir, 4, true);
    assert_eq!(
        clean, resumed,
        "resumed merge must be byte-identical to an uninterrupted run"
    );

    // The per-study manifests are byte-identical too — alpha's was
    // written by the interrupted run, beta's by the resumed one.
    for name in ["alpha", "beta", "gamma"] {
        let a = std::fs::read_to_string(clean_dir.join(format!("{name}.json"))).expect("clean");
        let b = std::fs::read_to_string(chaos_dir.join(format!("{name}.json"))).expect("chaos");
        assert_eq!(
            normalize(&a).expect("normalize"),
            normalize(&b).expect("normalize"),
            "{name} manifest must not depend on interruption or thread count"
        );
    }
    let _ = std::fs::remove_dir_all(&clean_dir);
    let _ = std::fs::remove_dir_all(&chaos_dir);
}
