//! Scale guarantees for the v3 streaming codec: compactness (≤ 1 byte
//! per instruction on branch-dense traces) and flat memory (peak RSS is
//! independent of trace length, because neither `TraceWriter` nor the
//! block-wise reader ever materializes the trace).
//!
//! The 100M-branch variant is `#[ignore]`d so `cargo test` stays fast;
//! CI runs it from the release leg with `-- --ignored`.

use std::sync::atomic::{AtomicU32, Ordering};

use branch_lab::predictors::{sweep_measure_stream, PredictorSpec};
use branch_lab::trace::{RetiredInst, Trace, TraceMeta, TraceWriter};

/// A fresh private directory under the system temp dir.
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "branch-lab-scale-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Peak resident set size (`VmHWM`) in kB, or 0 where `/proc` is
/// unavailable (the RSS assertions then pass trivially).
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0 };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|l| l.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

/// `i`-th record of the synthetic branch workload: a 64-site loop body
/// whose branches mix strongly biased, pattern-following, and noisy
/// behaviour — representative of what the compressor sees in practice.
fn synth_branch(i: u64, state: &mut u64) -> RetiredInst {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    let site = i % 64;
    let ip = 0x40_0000 + site * 4;
    let taken = match site % 3 {
        0 => true,                      // biased
        1 => !(i / 64).is_multiple_of(4), // short period pattern
        _ => (*state >> 33) % 10 < 3,  // noisy, 30% taken
    };
    RetiredInst::cond_branch(ip, taken, ip + 128, Some((site % 8) as u8), None)
}

/// Streams `n` synthetic branches to disk and back: asserts the encoded
/// size is ≤ 1 byte/inst and that the whole round trip (encode, decode,
/// predictor sweep) grows peak RSS by less than `rss_budget_kb` — a
/// constant, while materializing `n` records would take `64 * n` bytes.
fn stream_round_trip(n: u64, rss_budget_kb: u64) {
    let dir = scratch_dir("roundtrip");
    let path = dir.join("synthetic.bptr");
    let before_kb = peak_rss_kb();

    // Encode without materializing.
    let meta = TraceMeta::new("synthetic-scale", 0);
    let file = std::io::BufWriter::new(std::fs::File::create(&path).expect("create trace file"));
    let mut writer = TraceWriter::new(file, &meta, Some(n)).expect("write header");
    let mut state = 0x5eed_1234u64;
    for i in 0..n {
        writer.push(synth_branch(i, &mut state)).expect("push record");
    }
    use std::io::Write as _;
    writer.finish().expect("finish trace").flush().expect("flush trace");

    let encoded = std::fs::metadata(&path).expect("stat trace").len();
    let bytes_per_inst = encoded as f64 / n as f64;
    assert!(
        bytes_per_inst <= 1.0,
        "v3 encoding too fat: {encoded} bytes for {n} records = {bytes_per_inst:.3} B/inst"
    );

    // Decode block-by-block straight into a predictor sweep.
    let mut reader = Trace::open(&path).expect("open trace");
    let mut predictors = vec![
        PredictorSpec::Bimodal { log2_entries: 12 }.build(),
        PredictorSpec::GShare { log2_entries: 12, history_bits: 12 }.build(),
    ];
    let stats = sweep_measure_stream(&mut predictors, &mut reader).expect("streamed sweep");
    assert_eq!(reader.records_read(), n, "stream must yield every record");
    for s in &stats {
        assert_eq!(s.total, n, "every record is a conditional branch");
        // The workload is two-thirds predictable; any working predictor
        // clears 50%. Guards against decode corrupting the bit stream.
        assert!(s.accuracy() > 0.5, "implausible accuracy {}", s.accuracy());
    }

    let grown_kb = peak_rss_kb() - before_kb;
    assert!(
        grown_kb < rss_budget_kb,
        "round trip of {n} records grew peak RSS by {grown_kb} kB (budget {rss_budget_kb} kB) — \
         something materialized the trace"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Fast tier-1 variant: 2M branches, ~128 MB materialized if buggy.
#[test]
fn two_million_branches_stream_with_flat_rss() {
    stream_round_trip(2_000_000, 96 * 1024);
}

/// The acceptance-scale run: 100M branches (6.4 GB if materialized)
/// under the same constant RSS budget as the 2M variant — peak memory is
/// independent of trace length. Run with:
/// `cargo test --release --test streaming_scale -- --ignored`
#[test]
#[ignore = "scale run; exercised by ci.sh from the release leg"]
fn hundred_million_branches_stream_with_flat_rss() {
    stream_round_trip(100_000_000, 96 * 1024);
}
