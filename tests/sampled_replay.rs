//! Sampled-replay correctness: streamed-feature parity with the
//! materialized path, and reconstruction-error gates against full-replay
//! goldens.
//!
//! Two families of tests:
//!
//! * **Feature parity** — block-wise [`profile_intervals`] over a
//!   `TraceReader` must be *bit-identical* to `bbv()` computed over
//!   materialized [`Trace::slices`], across random traces, ragged final
//!   intervals, arbitrary stream chunkings, and 1..=16 engine threads.
//!   The sampled-replay planner clusters streamed profiles while the
//!   phase studies historically clustered materialized slices; this
//!   parity is what makes the `phase.rs` refactor behaviour-preserving.
//! * **Reconstruction error** — the production sampled path (streamed
//!   profiles → SimPoint medoids → warmed segment replay → weighted
//!   reconstruction) must simulate ≤ 25% of a workload's records and
//!   land within the reported error bars of the full-replay golden. The
//!   full 15-workload suite and the ≥2M-branch streamed variant are
//!   `#[ignore]`d so `cargo test` stays fast; `ci.sh` runs them from the
//!   release sampled leg.

use branch_lab::analysis::bbv;
use branch_lab::core::{DatasetConfig, Engine, SamplingConfig};
use branch_lab::pipeline::{PipelineConfig, SampledReplay, SamplePlan, SampleSegment, SweepReplay};
use branch_lab::predictors::{DirectionPredictor, TageScL};
use branch_lab::trace::{
    profile_intervals, BptrReader, InstClass, IntervalProfile, ReadTraceError, Reg, RetiredInst,
    SliceConfig, Trace, TraceMeta, TraceReader, TraceWriter,
};
use branch_lab::workloads::{lcf_suite, specint_suite};
use bp_experiments::studies::sampled_comparison;

/// Deterministic case generator (SplitMix64), as in `tests/properties.rs`.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed)
    }

    fn u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `lo..hi`.
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.u64() as usize) % (hi - lo)
    }
}

/// A random mixed trace: branches over a seeded IP set, plus ALU, load,
/// store and mul filler so profiles see realistic branch density.
fn random_trace(g: &mut Gen, len: usize) -> Trace {
    let mut t = Trace::new(TraceMeta::new("sampled-prop", 0));
    for i in 0..len {
        let ip = 0x1000 + (g.u64() % 97) * 4;
        match g.range(0, 5) {
            0 | 1 => t.push(RetiredInst::cond_branch(ip, g.u64() & 1 == 0, 0x8000, Some(1), None)),
            2 => t.push(RetiredInst::op(
                ip,
                InstClass::Load,
                Some(Reg::new(1)),
                None,
                Some(Reg::new(2)),
                g.u64() % 4096,
            )),
            3 => t.push(RetiredInst::op(
                ip,
                InstClass::Store,
                Some(Reg::new(2)),
                None,
                None,
                g.u64() % 4096,
            )),
            _ => t.push(RetiredInst::op(
                ip,
                InstClass::Alu,
                Some(Reg::new(3)),
                None,
                Some(Reg::new(4)),
                i as u64,
            )),
        }
    }
    t
}

/// A reader that re-chunks a trace at a fixed step, so chunk boundaries
/// land at arbitrary offsets relative to interval boundaries.
struct Chunked<'a> {
    t: &'a Trace,
    at: usize,
    step: usize,
}

impl TraceReader for Chunked<'_> {
    fn meta(&self) -> &TraceMeta {
        self.t.meta()
    }
    fn len_hint(&self) -> Option<u64> {
        None
    }
    fn next_chunk(&mut self) -> Result<Option<&[RetiredInst]>, ReadTraceError> {
        if self.at >= self.t.len() {
            return Ok(None);
        }
        let end = (self.at + self.step).min(self.t.len());
        let chunk = &self.t.insts()[self.at..end];
        self.at = end;
        Ok(Some(chunk))
    }
}

#[test]
fn streamed_profiles_bit_identical_to_materialized_bbv() {
    for seed in 0..24u64 {
        let mut g = Gen::new(seed.wrapping_mul(0x5851_F42D) + 1);
        let len = g.range(50, 3000);
        let interval = g.range(10, 400);
        let dims = [1, 8, 16, 64][g.range(0, 4)];
        let t = random_trace(&mut g, len);

        let profiles = profile_intervals(t.reader(), interval, dims).unwrap();
        let slices: Vec<&[RetiredInst]> = t.slices(SliceConfig::new(interval)).collect();
        // Same interval-boundary rule, including the ragged-tail keep rule.
        assert_eq!(profiles.len(), slices.len(), "seed {seed} len {len} interval {interval}");
        for (i, (p, s)) in profiles.iter().zip(&slices).enumerate() {
            assert_eq!(p.insts as usize, s.len(), "seed {seed} slice {i}");
            assert_eq!(
                p.branches as usize,
                s.iter().filter(|r| r.is_conditional_branch()).count(),
                "seed {seed} slice {i}"
            );
            let streamed = p.normalized_bbv();
            let materialized = bbv(s, dims);
            assert!(
                streamed.iter().zip(&materialized).all(|(a, b)| a.to_bits() == b.to_bits()),
                "seed {seed} slice {i}: streamed BBV not bit-identical to bbv()"
            );
        }
    }
}

#[test]
fn profile_chunking_is_immaterial() {
    // 997 is prime, so every chunk step lands chunk boundaries at every
    // possible offset inside an interval over the course of the stream.
    let mut g = Gen::new(42);
    let t = random_trace(&mut g, 997);
    let reference = profile_intervals(t.reader(), 100, 16).unwrap();
    assert_eq!(reference.len(), 10); // nine full + the kept 97-record tail
    for step in [1, 3, 7, 64, 100, 101, 997, 4096] {
        let chunked: Vec<IntervalProfile> =
            profile_intervals(Chunked { t: &t, at: 0, step }, 100, 16).unwrap();
        assert_eq!(chunked, reference, "step {step}");
    }
}

#[test]
fn profiles_identical_across_thread_counts() {
    // Feature extraction inside an Engine::map fleet (how studies fan out
    // across workloads) must be bit-identical at every thread count.
    let cfg = DatasetConfig::quick();
    let specs = specint_suite();
    let traces: Vec<Trace> = specs.iter().take(4).map(|s| s.trace(0, cfg.trace_len)).collect();
    let reference = Engine::with_threads(1)
        .map(&traces, |_, t| profile_intervals(t.reader(), cfg.slice.len(), 64).unwrap());
    for threads in 2..=16 {
        let got = Engine::with_threads(threads)
            .map(&traces, |_, t| profile_intervals(t.reader(), cfg.slice.len(), 64).unwrap());
        assert_eq!(got, reference, "threads {threads}");
    }
}

/// The acceptance gate, on the workload with the largest calibration
/// margin: ≤ 25% of records simulated, MPKI within ±2% relative error of
/// the full-replay golden, and the reported bars contain the golden.
#[test]
fn sampled_replay_reconstructs_perlbench_within_two_percent() {
    let cfg = DatasetConfig::standard();
    let sampling = SamplingConfig::enabled().resolve(&cfg);
    let specs = specint_suite();
    let spec = specs.iter().find(|s| s.name == "600.perlbench_s").expect("suite workload");
    let c = sampled_comparison(spec, &cfg, &sampling);
    assert!(
        c.est.coverage() <= 0.25,
        "coverage {:.3} exceeds the 25% budget",
        c.est.coverage()
    );
    assert!(
        c.mpki_rel_err() <= 0.02,
        "MPKI err {:.2}% exceeds 2% (golden {:.3}, est {:.3})",
        c.mpki_rel_err() * 100.0,
        c.golden_mpki,
        c.est.mpki
    );
    assert!(c.est.mpki_contains(c.golden_mpki), "bars must contain the golden MPKI");
    assert!(c.est.mpki_half > 0.0 && c.est.ipc_half > 0.0, "bars must be reported");
}

/// Full-suite gate at the calibrated standard scale: every workload's
/// MPKI bars contain its golden, within the coverage budget. `#[ignore]`d
/// for `cargo test`; `ci.sh` runs it in release from the sampled leg.
#[test]
#[ignore = "full-suite standard-scale sweep; run by ci.sh in release"]
fn sampled_mpki_bars_contain_golden_across_suite() {
    let cfg = DatasetConfig::standard();
    let sampling = SamplingConfig::enabled().resolve(&cfg);
    let mut best_err = f64::INFINITY;
    for spec in specint_suite().iter().chain(lcf_suite().iter()) {
        let c = sampled_comparison(spec, &cfg, &sampling);
        assert!(
            c.est.coverage() <= 0.25,
            "{}: coverage {:.3} exceeds the 25% budget",
            spec.name,
            c.est.coverage()
        );
        assert!(
            c.est.mpki_contains(c.golden_mpki),
            "{}: golden MPKI {:.3} outside [{:.3} ± {:.3}]",
            spec.name,
            c.golden_mpki,
            c.est.mpki,
            c.est.mpki_half
        );
        best_err = best_err.min(c.mpki_rel_err());
    }
    assert!(
        best_err <= 0.02,
        "no suite workload reconstructed within 2% (best {:.2}%)",
        best_err * 100.0
    );
}

/// Writes a phase-structured ≥2M-branch trace as BPTR v3 without ever
/// materializing it, then runs the whole sampled pipeline — profiling,
/// planning, segment extraction, warmed lanes — through streaming
/// `BptrReader` passes over the file.
fn write_streamed_trace(path: &std::path::Path, insts: usize) -> u64 {
    let meta = TraceMeta::new("sampled-stream", 0);
    let file = std::fs::File::create(path).expect("create trace file");
    let mut w = TraceWriter::new(std::io::BufWriter::new(file), &meta, Some(insts as u64))
        .expect("write header");
    let mut branches = 0u64;
    let phase_len = insts / 8; // 8 macro-phases cycling through 3 behaviours
    // Pseudo-random directions (SplitMix64 of the instruction index) keep
    // the branches genuinely hard: TAGE converges to the bias entropy
    // floor, not to zero MPKI, so relative reconstruction error is
    // meaningful. The bias differs per phase, giving the clusterer real
    // phase structure to find.
    let mix = |i: u64| {
        let mut z = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^ (z >> 31)
    };
    for i in 0..insts {
        let phase = (i / phase_len) % 3;
        let ip = 0x4000 + ((i as u64 % (37 + 11 * phase as u64)) * 4);
        if i % 4 == 0 {
            let bias = [800, 500, 650][phase];
            let taken = mix(i as u64) % 1000 < bias;
            w.push(RetiredInst::cond_branch(ip, taken, 0x9000, Some(1), None)).expect("push");
            branches += 1;
        } else if i % 4 == 1 {
            w.push(RetiredInst::op(
                ip,
                InstClass::Load,
                Some(Reg::new(1)),
                None,
                Some(Reg::new(2)),
                (i as u64 * 64) % (1 << (14 + phase)),
            ))
            .expect("push");
        } else {
            w.push(RetiredInst::op(
                ip,
                InstClass::Alu,
                Some(Reg::new(2)),
                None,
                Some(Reg::new(3)),
                i as u64,
            ))
            .expect("push");
        }
    }
    let inner = w.finish().expect("finish trace");
    drop(inner);
    branches
}

fn bptr(path: &std::path::Path) -> BptrReader<std::io::BufReader<std::fs::File>> {
    let file = std::fs::File::open(path).expect("open trace file");
    BptrReader::new(std::io::BufReader::new(file)).expect("read header")
}

#[test]
#[ignore = "streamed 2M-branch scale run; run by ci.sh in release"]
fn streamed_two_million_branch_trace_within_tolerance() {
    use branch_lab::analysis::{simpoints_from_profiles, PhaseConfig};

    let dir = std::env::temp_dir().join(format!("branch-lab-sampled-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let path = dir.join("stream.bptr");
    const INSTS: usize = 8_000_000;
    let branches = write_streamed_trace(&path, INSTS);
    assert!(branches >= 2_000_000, "trace must carry >= 2M branches, has {branches}");

    let base = PipelineConfig::skylake();
    let interval_len = INSTS / 20;
    let warmup = interval_len / 5;

    // Full-replay golden, itself computed in streaming passes: prepared
    // replay from one pass, misprediction flags from another.
    let golden_sweep = SweepReplay::prepare(bptr(&path), &base).expect("prepare golden");
    let mut predictor = TageScL::kb8();
    let mut flags = Vec::with_capacity(branches as usize);
    {
        let mut r = bptr(&path);
        while let Some(chunk) = r.next_chunk().expect("stream") {
            for inst in chunk {
                if inst.is_conditional_branch() {
                    let taken = inst.branch.expect("conditional carries info").taken;
                    flags.push(predictor.predict_and_train(inst.ip, taken) != taken);
                }
            }
        }
    }
    let golden = golden_sweep.simulate(&flags, &base);

    // The sampled path, end to end over streaming readers.
    let phase_cfg = PhaseConfig { max_phases: 4, ..PhaseConfig::default() };
    let profiles = profile_intervals(bptr(&path), interval_len, phase_cfg.dims).expect("profile");
    assert_eq!(profiles.len(), 20);
    let simpoints = simpoints_from_profiles(&profiles, &phase_cfg);
    let plan = SamplePlan {
        interval_len,
        warmup,
        segments: simpoints
            .representatives
            .iter()
            .map(|r| SampleSegment { interval: r.interval, weight: r.weight, spread: r.spread })
            .collect(),
    };
    let sampled = SampledReplay::prepare(bptr(&path), &base, &plan).expect("prepare sampled");
    let lanes = sampled.warmed_lanes(bptr(&path), &mut TageScL::kb8()).expect("warm lanes");
    let lane_refs: Vec<&[bool]> = lanes.iter().map(Vec::as_slice).collect();
    let est = sampled.simulate_weighted(&lane_refs, &base);

    std::fs::remove_dir_all(&dir).ok();

    let rel_err = (est.mpki - golden.mpki()).abs() / golden.mpki();
    assert!(est.coverage() <= 0.25, "coverage {:.3} exceeds the 25% budget", est.coverage());
    assert!(
        rel_err <= 0.05,
        "streamed MPKI err {:.2}% exceeds tolerance (golden {:.3}, est {:.3})",
        rel_err * 100.0,
        golden.mpki(),
        est.mpki
    );
    assert!(
        est.mpki_contains(golden.mpki()),
        "bars [{:.3} ± {:.3}] must contain golden {:.3}",
        est.mpki,
        est.mpki_half,
        golden.mpki()
    );
}
