//! Property-based tests over the core data structures and invariants,
//! using randomly generated programs and branch streams.
//!
//! The build environment is offline, so instead of proptest these tests
//! drive each property from a deterministic SplitMix64 case generator:
//! every property runs over a few dozen seeded random cases, and failures
//! report the case seed for replay.

use branch_lab::predictors::{
    measure, misprediction_flags, Bimodal, BitHistory, FoldedHistory, GShare, Perceptron, Ppm,
    PpmConfig, Predictor, SatCounter, SignedCounter, TageScL,
};
use branch_lab::pipeline::{simulate, PipelineConfig};
use branch_lab::trace::{Cond, Reg, RetiredInst, SliceConfig, Trace, TraceMeta};
use branch_lab::workloads::{Interpreter, Op, ProgramBuilder, Terminator};

/// Deterministic case generator (SplitMix64).
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed)
    }

    fn u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn bool(&mut self) -> bool {
        self.u64() & 1 == 1
    }

    /// Uniform value in `lo..hi`.
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.u64() as usize) % (hi - lo)
    }

    fn ops(&mut self, n: usize) -> Vec<(u8, u8, u8, u64)> {
        (0..n)
            .map(|_| {
                let w = self.u64();
                (w as u8, (w >> 8) as u8, (w >> 16) as u8, self.u64())
            })
            .collect()
    }
}

/// Number of random cases per property.
const CASES: u64 = 24;

/// Builds a random but well-formed program: a ring of blocks with random
/// straight-line ops and conditional branches between ring members.
fn arbitrary_program(ops: Vec<(u8, u8, u8, u64)>, nblocks: usize) -> branch_lab::workloads::Program {
    let nblocks = nblocks.clamp(2, 12);
    let mut b = ProgramBuilder::new();
    let blocks: Vec<_> = (0..nblocks).map(|_| b.block()).collect();
    for (i, &blk) in blocks.iter().enumerate() {
        // A few deterministic ops derived from the fuzz input.
        for &(sel, r1, r2, imm) in ops.iter().skip(i).take(4) {
            let d = Reg::new(r1 % 30);
            let a = Reg::new(r2 % 30);
            let op = match sel % 6 {
                0 => Op::AddI { dst: d, a, imm },
                1 => Op::Xor { dst: d, a, b: Reg::new((r1 ^ r2) % 30) },
                2 => Op::MulI { dst: d, a, imm: imm | 1 },
                3 => Op::Load { dst: d, base: a, offset: imm },
                4 => Op::Store { src: d, base: a, offset: imm },
                _ => Op::Rem { dst: d, a, m: (imm % 97) + 2 },
            };
            b.push(blk, op);
        }
        let taken = blocks[(i + 1) % nblocks];
        let fallthrough = blocks[(i + 2) % nblocks];
        b.term(
            blk,
            Terminator::BrI {
                cond: if i % 2 == 0 { Cond::Lt } else { Cond::Ne },
                a: Reg::new((i % 30) as u8),
                imm: ops.first().map_or(3, |o| o.3 % 100),
                taken,
                fallthrough,
            },
        );
    }
    b.finish(blocks[0], 10)
}

/// Any well-formed program runs to the budget and produces a trace
/// whose branches reference real block addresses.
#[test]
fn interpreter_never_panics_and_traces_are_exact() {
    for case in 0..CASES {
        let mut g = Gen::new(case);
        let ops = {
            let n = g.range(4, 20);
            g.ops(n)
        };
        let nblocks = g.range(2, 12);
        let seed = g.u64();
        let len = g.range(64, 2048);
        let p = arbitrary_program(ops, nblocks);
        let trace = Interpreter::new(&p, seed).run(len, TraceMeta::new("fuzz", 0));
        assert_eq!(trace.len(), len, "case {case}");
        for br in trace.conditional_branches() {
            // Branch IPs and targets must be within the code segment.
            assert!(br.ip >= branch_lab::workloads::CODE_BASE, "case {case}");
            assert!(br.target >= branch_lab::workloads::CODE_BASE, "case {case}");
        }
    }
}

/// Determinism: identical (program, seed, budget) yields identical
/// traces.
#[test]
fn interpreter_is_deterministic() {
    for case in 0..CASES {
        let mut g = Gen::new(0x1000 + case);
        let ops = {
            let n = g.range(4, 16);
            g.ops(n)
        };
        let nblocks = g.range(2, 8);
        let seed = g.u64();
        let p = arbitrary_program(ops, nblocks);
        let a = Interpreter::new(&p, seed).run(512, TraceMeta::new("f", 0));
        let b = Interpreter::new(&p, seed).run(512, TraceMeta::new("f", 0));
        assert_eq!(a.insts(), b.insts(), "case {case}");
    }
}

/// Every predictor stays panic-free and self-consistent on arbitrary
/// branch streams.
#[test]
fn predictors_handle_arbitrary_streams() {
    for case in 0..CASES {
        let mut g = Gen::new(0x2000 + case);
        let n = g.range(1, 400);
        let stream: Vec<(u32, bool)> = (0..n).map(|_| (g.u64() as u32, g.bool())).collect();
        let mut predictors: Vec<Box<dyn Predictor>> = vec![
            Box::new(Bimodal::new(8)),
            Box::new(GShare::new(10, 12)),
            Box::new(Perceptron::new(8, 16)),
            Box::new(Ppm::new(PpmConfig::default())),
            Box::new(TageScL::kb8()),
        ];
        for p in &mut predictors {
            for &(ip, taken) in &stream {
                let ip = u64::from(ip) << 2;
                let pred = p.predict(ip);
                p.update(ip, taken, pred);
            }
            assert!(
                p.storage_bits() > 0 || p.name() == "always-taken",
                "case {case}: {}",
                p.name()
            );
        }
    }
}

/// Prediction accuracy is reproducible: running the same predictor
/// twice over the same trace gives identical flags.
#[test]
fn prediction_is_deterministic() {
    for case in 0..CASES {
        let mut g = Gen::new(0x3000 + case);
        let seed = g.u64();
        let len = g.range(256, 1024);
        let mut t = Trace::new(TraceMeta::new("s", 0));
        let mut state = seed | 1;
        for _ in 0..len {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let ip = 0x400 + u64::from((state >> 33) as u8 & 31) * 4;
            t.push(RetiredInst::cond_branch(ip, state & 1 == 1, 0, None, None));
        }
        let a = misprediction_flags(&mut TageScL::kb8(), &t);
        let b = misprediction_flags(&mut TageScL::kb8(), &t);
        assert_eq!(a, b, "case {case}");
    }
}

/// Pipeline monotonicity: flipping mispredictions on can only slow the
/// machine down, and IPC is bounded by the fetch width.
#[test]
fn pipeline_is_monotone_in_mispredictions() {
    for case in 0..CASES {
        let mut g = Gen::new(0x4000 + case);
        let seed = g.u64();
        let flips: Vec<bool> = (0..64).map(|_| g.bool()).collect();
        let mut t = Trace::new(TraceMeta::new("m", 0));
        let mut state = seed | 1;
        for i in 0..64u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            if i % 4 == 0 {
                t.push(RetiredInst::cond_branch(0x400 + i * 4, state & 1 == 1, 0, None, None));
            } else {
                t.push(RetiredInst::op(
                    0x400 + i * 4,
                    branch_lab::trace::InstClass::Alu,
                    None,
                    None,
                    Some(Reg::new((i % 8) as u8)),
                    0,
                ));
            }
        }
        let nbr = t.conditional_branch_count();
        let cfg = PipelineConfig::skylake();
        let none = simulate(&t, &vec![false; nbr], &cfg);
        let some = simulate(&t, &flips[..nbr], &cfg);
        assert!(some.cycles >= none.cycles, "case {case}");
        assert!(none.ipc() <= f64::from(cfg.fetch_width) + 1e-9, "case {case}");
    }
}

/// Saturating counters never leave their range and move toward the
/// trained direction.
#[test]
fn counters_respect_ranges() {
    for case in 0..CASES {
        let mut g = Gen::new(0x5000 + case);
        let n = g.range(1, 200);
        let updates: Vec<bool> = (0..n).map(|_| g.bool()).collect();
        let bits = g.range(1, 8) as u32;
        let mut c = SatCounter::new(bits, 0);
        let mut s = SignedCounter::new(bits.max(2));
        for &u in &updates {
            c.update(u);
            s.update(u);
            assert!(c.value() <= c.max(), "case {case}");
            assert!(s.centered().abs() <= i32::from(i16::MAX), "case {case}");
        }
        // After enough consistent updates to saturate, direction matches.
        let mut c2 = SatCounter::new(bits, 0);
        for _ in 0..=c2.max() {
            c2.update(true);
        }
        assert!(c2.taken(), "case {case}");
    }
}

/// Slices partition traces: slice lengths sum to at most the trace
/// length, and all but the last have exactly the configured length.
#[test]
fn slices_partition_traces() {
    for case in 0..CASES {
        let mut g = Gen::new(0x6000 + case);
        let len = g.range(1, 5000);
        let slice_len = g.range(1, 1000);
        let mut t = Trace::new(TraceMeta::new("sl", 0));
        for i in 0..len {
            t.push(RetiredInst::op(i as u64, branch_lab::trace::InstClass::Nop, None, None, None, 0));
        }
        let cfg = SliceConfig::new(slice_len);
        let slices: Vec<_> = t.slices(cfg).collect();
        let total: usize = slices.iter().map(|s| s.len()).sum();
        assert!(total <= len, "case {case}");
        for s in slices.iter().rev().skip(1) {
            assert_eq!(s.len(), slice_len, "case {case}");
        }
        if let Some(last) = slices.last() {
            assert!(last.len() * 2 >= slice_len, "case {case}");
        }
    }
}

/// The O(1) folded-history register always equals a naive refold of the
/// raw global history: for every prefix of a random push sequence, XORing
/// the newest `olen` bits of the [`BitHistory`] into position
/// `age % clen` reproduces [`FoldedHistory::value`] exactly. This pins
/// the cyclic-shift-register construction (and its `outpoint` wraparound)
/// against the ground-truth definition, over random geometries — not just
/// the few hand-picked ones in the unit tests.
#[test]
fn folded_history_matches_naive_refold() {
    for case in 0..CASES {
        let mut g = Gen::new(0x8000 + case);
        let clen = g.range(1, 33) as u32;
        let olen = g.range(1, 600);
        let pushes = g.range(olen + 1, 2 * olen + 64);
        let mut raw = BitHistory::new(olen.max(2));
        let mut folded = FoldedHistory::new(olen, clen);
        let mut age = 0usize; // bits pushed so far
        for _ in 0..pushes {
            let newbit = g.bool();
            // The incremental update needs the bit about to age past olen,
            // read from the raw history *before* the push.
            let outgoing = age >= olen && raw.bit(olen - 1);
            folded.update(newbit, outgoing);
            raw.push(newbit);
            age += 1;

            let mut expect = 0u64;
            for a in 0..olen.min(age) {
                if raw.bit(a) {
                    expect ^= 1 << (a as u32 % clen);
                }
            }
            assert_eq!(
                folded.value(),
                expect,
                "case {case}: olen={olen} clen={clen} after {age} pushes"
            );
        }
    }
}

/// With `BRANCH_LAB_METRICS` unset (this test binary never enables it),
/// the metrics facade must be fully inert: driving the instrumented
/// paths — prediction, pipeline simulation, a parallel study — registers
/// no counters and no timers at all, so the instrumentation cannot
/// perturb or observe anything in the default configuration.
#[test]
fn metrics_disabled_registers_nothing() {
    assert!(
        !branch_lab::metrics::enabled(),
        "test binary must run with metrics disabled"
    );
    // Exercise predictor counters, pipeline counters, and the engine /
    // study / trace-store instrumentation.
    let mut g = Gen::new(0x9000);
    let mut t = Trace::new(TraceMeta::new("inert", 0));
    let mut state = g.u64() | 1;
    for _ in 0..400 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let ip = 0x400 + u64::from((state >> 33) as u8 & 31) * 4;
        t.push(RetiredInst::cond_branch(ip, state & 1 == 1, 0, None, None));
    }
    let flags = misprediction_flags(&mut TageScL::kb8(), &t);
    let _ = simulate(&t, &flags, &PipelineConfig::skylake());
    let spec = &branch_lab::workloads::specint_suite()[0];
    let cfg = branch_lab::core::DatasetConfig::quick().with_trace_len(10_000);
    let _ = branch_lab::core::characterize_workload(spec, &cfg, TageScL::kb8);

    assert!(
        branch_lab::metrics::snapshot_counters().is_empty(),
        "disabled run registered counters: {:?}",
        branch_lab::metrics::snapshot_counters()
    );
    assert!(
        branch_lab::metrics::snapshot_timers().is_empty(),
        "disabled run registered timers: {:?}",
        branch_lab::metrics::snapshot_timers()
    );
}

/// `measure` accuracy equals 1 - (flagged mispredictions / branches).
#[test]
fn measure_and_flags_agree() {
    for case in 0..CASES {
        let mut g = Gen::new(0x7000 + case);
        let seed = g.u64();
        let mut t = Trace::new(TraceMeta::new("agree", 0));
        let mut state = seed | 1;
        for _ in 0..300 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let ip = 0x40 + u64::from((state >> 20) as u8 & 7) * 4;
            t.push(RetiredInst::cond_branch(ip, (state >> 8) & 1 == 1, 0, None, None));
        }
        let acc = measure(&mut GShare::new(10, 8), &t);
        let flags = misprediction_flags(&mut GShare::new(10, 8), &t);
        let wrong = flags.iter().filter(|&&f| f).count() as u64;
        assert_eq!(acc.total - acc.correct, wrong, "case {case}");
    }
}
