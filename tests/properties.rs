//! Property-based tests over the core data structures and invariants,
//! using randomly generated programs and branch streams.

use branch_lab::predictors::{
    measure, misprediction_flags, Bimodal, GShare, Perceptron, Ppm, PpmConfig, Predictor,
    SatCounter, SignedCounter, TageScL,
};
use branch_lab::pipeline::{simulate, PipelineConfig};
use branch_lab::trace::{Cond, Reg, RetiredInst, SliceConfig, Trace, TraceMeta};
use branch_lab::workloads::{Interpreter, Op, ProgramBuilder, Terminator};
use proptest::prelude::*;

/// Builds a random but well-formed program: a ring of blocks with random
/// straight-line ops and conditional branches between ring members.
fn arbitrary_program(ops: Vec<(u8, u8, u8, u64)>, nblocks: usize) -> branch_lab::workloads::Program {
    let nblocks = nblocks.clamp(2, 12);
    let mut b = ProgramBuilder::new();
    let blocks: Vec<_> = (0..nblocks).map(|_| b.block()).collect();
    for (i, &blk) in blocks.iter().enumerate() {
        // A few deterministic ops derived from the fuzz input.
        for &(sel, r1, r2, imm) in ops.iter().skip(i).take(4) {
            let d = Reg::new(r1 % 30);
            let a = Reg::new(r2 % 30);
            let op = match sel % 6 {
                0 => Op::AddI { dst: d, a, imm },
                1 => Op::Xor { dst: d, a, b: Reg::new((r1 ^ r2) % 30) },
                2 => Op::MulI { dst: d, a, imm: imm | 1 },
                3 => Op::Load { dst: d, base: a, offset: imm },
                4 => Op::Store { src: d, base: a, offset: imm },
                _ => Op::Rem { dst: d, a, m: (imm % 97) + 2 },
            };
            b.push(blk, op);
        }
        let taken = blocks[(i + 1) % nblocks];
        let fallthrough = blocks[(i + 2) % nblocks];
        b.term(
            blk,
            Terminator::BrI {
                cond: if i % 2 == 0 { Cond::Lt } else { Cond::Ne },
                a: Reg::new((i % 30) as u8),
                imm: ops.first().map_or(3, |o| o.3 % 100),
                taken,
                fallthrough,
            },
        );
    }
    b.finish(blocks[0], 10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any well-formed program runs to the budget and produces a trace
    /// whose branches reference real block addresses.
    #[test]
    fn interpreter_never_panics_and_traces_are_exact(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u64>()), 4..20),
        nblocks in 2usize..12,
        seed in any::<u64>(),
        len in 64usize..2048,
    ) {
        let p = arbitrary_program(ops, nblocks);
        let trace = Interpreter::new(&p, seed).run(len, TraceMeta::new("fuzz", 0));
        prop_assert_eq!(trace.len(), len);
        for br in trace.conditional_branches() {
            // Branch IPs and targets must be within the code segment.
            prop_assert!(br.ip >= branch_lab::workloads::CODE_BASE);
            prop_assert!(br.target >= branch_lab::workloads::CODE_BASE);
        }
    }

    /// Determinism: identical (program, seed, budget) yields identical
    /// traces.
    #[test]
    fn interpreter_is_deterministic(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u64>()), 4..16),
        nblocks in 2usize..8,
        seed in any::<u64>(),
    ) {
        let p = arbitrary_program(ops, nblocks);
        let a = Interpreter::new(&p, seed).run(512, TraceMeta::new("f", 0));
        let b = Interpreter::new(&p, seed).run(512, TraceMeta::new("f", 0));
        prop_assert_eq!(a.insts(), b.insts());
    }

    /// Every predictor stays panic-free and self-consistent on arbitrary
    /// branch streams.
    #[test]
    fn predictors_handle_arbitrary_streams(
        stream in proptest::collection::vec((any::<u32>(), any::<bool>()), 1..400),
    ) {
        let mut predictors: Vec<Box<dyn Predictor>> = vec![
            Box::new(Bimodal::new(8)),
            Box::new(GShare::new(10, 12)),
            Box::new(Perceptron::new(8, 16)),
            Box::new(Ppm::new(PpmConfig::default())),
            Box::new(TageScL::kb8()),
        ];
        for p in &mut predictors {
            for &(ip, taken) in &stream {
                let ip = u64::from(ip) << 2;
                let pred = p.predict(ip);
                p.update(ip, taken, pred);
            }
            prop_assert!(p.storage_bits() > 0 || p.name() == "always-taken");
        }
    }

    /// Prediction accuracy is reproducible: running the same predictor
    /// twice over the same trace gives identical flags.
    #[test]
    fn prediction_is_deterministic(seed in any::<u64>(), len in 256usize..1024) {
        let mut t = Trace::new(TraceMeta::new("s", 0));
        let mut state = seed | 1;
        for i in 0..len {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let ip = 0x400 + u64::from((state >> 33) as u8 & 31) * 4;
            t.push(RetiredInst::cond_branch(ip, state & 1 == 1, 0, None, None));
            let _ = i;
        }
        let a = misprediction_flags(&mut TageScL::kb8(), &t);
        let b = misprediction_flags(&mut TageScL::kb8(), &t);
        prop_assert_eq!(a, b);
    }

    /// Pipeline monotonicity: flipping mispredictions on can only slow the
    /// machine down, and IPC is bounded by the fetch width.
    #[test]
    fn pipeline_is_monotone_in_mispredictions(
        seed in any::<u64>(),
        flips in proptest::collection::vec(any::<bool>(), 64),
    ) {
        let mut t = Trace::new(TraceMeta::new("m", 0));
        let mut state = seed | 1;
        for i in 0..64u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            if i % 4 == 0 {
                t.push(RetiredInst::cond_branch(0x400 + i * 4, state & 1 == 1, 0, None, None));
            } else {
                t.push(RetiredInst::op(
                    0x400 + i * 4,
                    branch_lab::trace::InstClass::Alu,
                    None,
                    None,
                    Some(Reg::new((i % 8) as u8)),
                    0,
                ));
            }
        }
        let nbr = t.conditional_branch_count();
        let cfg = PipelineConfig::skylake();
        let none = simulate(&t, &vec![false; nbr], &cfg);
        let some = simulate(&t, &flips[..nbr], &cfg);
        prop_assert!(some.cycles >= none.cycles);
        prop_assert!(none.ipc() <= f64::from(cfg.fetch_width) + 1e-9);
    }

    /// Saturating counters never leave their range and move toward the
    /// trained direction.
    #[test]
    fn counters_respect_ranges(updates in proptest::collection::vec(any::<bool>(), 1..200), bits in 1u32..8) {
        let mut c = SatCounter::new(bits, 0);
        let mut s = SignedCounter::new(bits.max(2));
        for &u in &updates {
            c.update(u);
            s.update(u);
            prop_assert!(c.value() <= c.max());
            prop_assert!(s.centered().abs() <= i32::from(i16::MAX));
        }
        // After enough consistent updates to saturate, direction matches.
        let mut c2 = SatCounter::new(bits, 0);
        for _ in 0..=c2.max() { c2.update(true); }
        prop_assert!(c2.taken());
    }

    /// Slices partition traces: slice lengths sum to at most the trace
    /// length, and all but the last have exactly the configured length.
    #[test]
    fn slices_partition_traces(len in 1usize..5000, slice_len in 1usize..1000) {
        let mut t = Trace::new(TraceMeta::new("sl", 0));
        for i in 0..len {
            t.push(RetiredInst::op(i as u64, branch_lab::trace::InstClass::Nop, None, None, None, 0));
        }
        let cfg = SliceConfig::new(slice_len);
        let slices: Vec<_> = t.slices(cfg).collect();
        let total: usize = slices.iter().map(|s| s.len()).sum();
        prop_assert!(total <= len);
        for s in slices.iter().rev().skip(1) {
            prop_assert_eq!(s.len(), slice_len);
        }
        if let Some(last) = slices.last() {
            prop_assert!(last.len() * 2 >= slice_len);
        }
    }

    /// `measure` accuracy equals 1 - (flagged mispredictions / branches).
    #[test]
    fn measure_and_flags_agree(seed in any::<u64>()) {
        let mut t = Trace::new(TraceMeta::new("agree", 0));
        let mut state = seed | 1;
        for _ in 0..300 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let ip = 0x40 + u64::from((state >> 20) as u8 & 7) * 4;
            t.push(RetiredInst::cond_branch(ip, (state >> 8) & 1 == 1, 0, None, None));
        }
        let acc = measure(&mut GShare::new(10, 8), &t);
        let flags = misprediction_flags(&mut GShare::new(10, 8), &t);
        let wrong = flags.iter().filter(|&&f| f).count() as u64;
        prop_assert_eq!(acc.total - acc.correct, wrong);
    }
}
