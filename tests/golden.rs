//! Golden-master tests for the experiment binaries.
//!
//! Each test runs one binary's library entry point
//! (`bp_experiments::reports::*_report`) at the `--quick` dataset scale
//! and compares its rendered stdout byte-for-byte against a checked-in
//! fixture under `tests/golden/`. Any numeric drift — a predictor change,
//! a pipeline-model change, a float reassociation — fails the suite with
//! the first differing line.
//!
//! To regenerate fixtures after an *intentional* change:
//!
//! ```text
//! BRANCH_LAB_UPDATE_GOLDEN=1 cargo test --test golden
//! ```
//!
//! then review the diff like any other code change. Set
//! `BRANCH_LAB_TRACE_DIR` to share generated traces across runs.
//!
//! The fixtures are thread-count independent ([`bp_core::Engine::map`]
//! returns results in input order and all reductions are serial) and
//! identical in debug and release (no fast-math). Binaries whose output
//! depends on `HashMap` iteration ties (`fig6`, `table3`) are excluded.

use std::path::PathBuf;

use bp_core::DatasetConfig;
use bp_experiments::reports;

/// The dataset scale the fixtures were recorded at: exactly `--quick`.
fn golden_config() -> DatasetConfig {
    DatasetConfig::quick()
}

/// Compares `actual` against `tests/golden/<name>.txt`, or rewrites the
/// fixture when `BRANCH_LAB_UPDATE_GOLDEN=1`.
fn check(name: &str, actual: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"));
    if std::env::var("BRANCH_LAB_UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("create fixture dir");
        std::fs::write(&path, actual).expect("write fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {}: {e}\n\
             regenerate with: BRANCH_LAB_UPDATE_GOLDEN=1 cargo test --test golden",
            path.display()
        )
    });
    if expected != actual {
        let diff = expected
            .lines()
            .zip(actual.lines())
            .enumerate()
            .find(|(_, (e, a))| e != a)
            .map_or_else(
                || {
                    format!(
                        "line counts differ: expected {}, got {}",
                        expected.lines().count(),
                        actual.lines().count()
                    )
                },
                |(i, (e, a))| format!("first diff at line {}:\n  expected: {e}\n  actual:   {a}", i + 1),
            );
        panic!(
            "golden mismatch for {name} ({})\n{diff}\n\
             if the change is intentional, regenerate with \
             BRANCH_LAB_UPDATE_GOLDEN=1 cargo test --test golden",
            path.display()
        );
    }
}

#[test]
fn golden_table1() {
    check("table1", &reports::table1_report(&golden_config()).render());
}

#[test]
fn golden_table2() {
    check("table2", &reports::table2_report(&golden_config()).render());
}

#[test]
fn golden_fig1() {
    check("fig1", &reports::fig1_report(&golden_config()).render());
}

#[test]
fn golden_fig2() {
    check("fig2", &reports::fig2_report(&golden_config()).render());
}

#[test]
fn golden_fig3() {
    check("fig3", &reports::fig3_report(&golden_config()).render());
}

#[test]
fn golden_fig5() {
    check("fig5", &reports::fig5_report(&golden_config()).render());
}

#[test]
fn golden_fig7() {
    check("fig7", &reports::fig7_report(&golden_config()).render());
}

#[test]
fn golden_fig8() {
    check("fig8", &reports::fig8_report(&golden_config()).render());
}

#[test]
fn golden_fig9() {
    check("fig9", &reports::fig9_report(&golden_config()).render());
}

#[test]
fn golden_grid() {
    check("grid", &reports::grid_report(&golden_config()).render());
}
