//! Grid-study parity: the single-pass heterogeneous grid must be
//! *bit-identical* to running each (predictor, scale) cell as its own
//! per-config invocation, and independent of the engine's thread count.
//!
//! The grid study's whole value is that it collapses `specs × scales`
//! invocations into one train pass and one prepared replay per workload;
//! these tests pin that the collapse changes nothing: every IPC and MPKI
//! cell equals the solo number exactly (f64 bit equality, not epsilon),
//! and 1-, 4- and 16-thread engines produce byte-identical studies.

use branch_lab::core::{hetero_grid_study_with, DatasetConfig, Engine, HeteroGridStudy};
use branch_lab::pipeline::{PipelineConfig, SweepReplay};
use branch_lab::predictors::misprediction_flags;
use branch_lab::workloads::lcf_suite;

/// Two LCF workloads keep the per-config reference pass (16 solo train
/// walks per workload) affordable while still exercising the parallel
/// engine with more tasks than one.
fn workloads() -> Vec<branch_lab::workloads::WorkloadSpec> {
    lcf_suite()[..2].to_vec()
}

fn grid(threads: usize) -> HeteroGridStudy {
    hetero_grid_study_with(
        Engine::with_threads(threads),
        &workloads(),
        &DatasetConfig::quick(),
    )
}

/// Exact structural equality, field by field; f64 cells must match
/// bitwise, which is what "byte-identical output" means for the
/// rendered report.
fn assert_identical(a: &HeteroGridStudy, b: &HeteroGridStudy, label: &str) {
    assert_eq!(a.scales, b.scales, "{label}: scales");
    assert_eq!(a.specs, b.specs, "{label}: specs");
    assert_eq!(a.rows.len(), b.rows.len(), "{label}: row count");
    for (ra, rb) in a.rows.iter().zip(&b.rows) {
        assert_eq!(ra.name, rb.name, "{label}: row name");
        for (ia, ib) in ra.ipc.iter().flatten().zip(rb.ipc.iter().flatten()) {
            assert_eq!(ia.to_bits(), ib.to_bits(), "{label}: {} ipc", ra.name);
        }
        for (ma, mb) in ra.mpki.iter().zip(&rb.mpki) {
            assert_eq!(ma.to_bits(), mb.to_bits(), "{label}: {} mpki", ra.name);
        }
    }
}

#[test]
fn grid_is_byte_identical_at_1_4_and_16_threads() {
    let serial = grid(1);
    assert_identical(&serial, &grid(4), "4 threads");
    assert_identical(&serial, &grid(16), "16 threads");
}

#[test]
fn grid_cells_match_per_config_invocations_exactly() {
    let cfg = DatasetConfig::quick();
    let study = grid(1);
    let base = PipelineConfig::skylake();
    for (w, wl) in workloads().iter().enumerate() {
        let trace = wl.cached_trace(0, cfg.trace_len);
        let insts = trace.len().max(1) as f64;
        let sweep = SweepReplay::new(&trace, &base);
        for (i, spec) in study.specs.iter().enumerate() {
            // The per-config path: this predictor alone, scalar flags,
            // one replay per scale.
            let flags = misprediction_flags(spec.build().as_mut(), &trace);
            let mpki = flags.iter().filter(|&&m| m).count() as f64 * 1000.0 / insts;
            assert_eq!(
                study.rows[w].mpki[i].to_bits(),
                mpki.to_bits(),
                "{}/{}: mpki",
                wl.name,
                spec.label()
            );
            for (si, &scale) in study.scales.iter().enumerate() {
                let solo = sweep.simulate_many(&[flags.as_slice()], &base.scaled(scale))[0];
                assert_eq!(
                    study.rows[w].ipc[si][i].to_bits(),
                    solo.ipc().to_bits(),
                    "{}/{}: ipc at {scale}x",
                    wl.name,
                    spec.label()
                );
            }
        }
    }
}
