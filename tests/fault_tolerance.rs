//! Fault-tolerance guarantees: torn/corrupt trace-cache files are
//! detected, quarantined, and regenerated (never trusted); `Trace::save`
//! is atomic under concurrency; `Engine::try_map` isolates panicking
//! tasks without losing or perturbing sibling results; and the
//! `faultpoint` facility drives every degradation path deterministically.
//!
//! Fault plans are process-global, so every test here serializes behind
//! one gate — the suite is cheap, the determinism is worth it.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use branch_lab::core::{faultpoint, Engine};
use branch_lab::trace::{ReadTraceError, RetiredInst, Trace, TraceMeta};
use branch_lab::workloads::{lcf_suite, specint_suite, TraceStore};

fn gate() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A fresh private directory under the system temp dir.
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "branch-lab-fault-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// The single `.bptr` file in `dir`.
fn cache_file(dir: &std::path::Path) -> std::path::PathBuf {
    std::fs::read_dir(dir)
        .expect("read dir")
        .map(|e| e.expect("entry").path())
        .find(|p| p.extension().is_some_and(|e| e == "bptr"))
        .expect("one .bptr cache file")
}

fn quarantined_files(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
    std::fs::read_dir(dir)
        .expect("read dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| {
            // Quarantine names are uniquely suffixed: `<file>.corrupt-<n>`.
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.contains(".corrupt"))
        })
        .collect()
}

#[test]
fn truncated_cache_file_is_quarantined_and_regenerated() {
    let _g = gate();
    let dir = scratch_dir("truncate");
    let spec = &lcf_suite()[0];
    let good = TraceStore::with_cache_dir(&dir).get(spec, 0, 12_000);

    // Tear the file the way a crash mid-write (without atomic rename)
    // would: keep a valid prefix, drop the rest.
    let path = cache_file(&dir);
    let bytes = std::fs::read(&path).expect("read cache file");
    std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");

    let store = TraceStore::with_cache_dir(&dir);
    let regenerated = store.get(spec, 0, 12_000);
    let stats = store.stats();
    assert_eq!(stats.corrupt, 1, "{stats:?}");
    assert_eq!(stats.disk_loads, 0, "{stats:?}");
    assert_eq!(stats.generated, 1, "{stats:?}");
    assert_eq!(regenerated.insts(), good.insts());
    assert_eq!(quarantined_files(&dir).len(), 1, "torn file kept for post-mortem");

    // Regeneration re-persisted a good copy: a third store disk-loads it.
    let reloader = TraceStore::with_cache_dir(&dir);
    let reloaded = reloader.get(spec, 0, 12_000);
    assert_eq!(reloader.stats().disk_loads, 1);
    assert_eq!(reloaded.insts(), good.insts());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_flipped_cache_file_is_caught_by_the_checksum() {
    let _g = gate();
    let dir = scratch_dir("bitflip");
    let spec = &lcf_suite()[1];
    let good = TraceStore::with_cache_dir(&dir).get(spec, 0, 12_000);

    // Flip one bit deep inside the record payload. Every value of the
    // flipped field decodes fine, so only the v2 checksum can notice.
    let path = cache_file(&dir);
    let mut bytes = std::fs::read(&path).expect("read cache file");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&path, &bytes).expect("rewrite");

    let store = TraceStore::with_cache_dir(&dir);
    let regenerated = store.get(spec, 0, 12_000);
    let stats = store.stats();
    assert_eq!(stats.corrupt, 1, "{stats:?}");
    assert_eq!(stats.generated, 1, "{stats:?}");
    assert_eq!(regenerated.insts(), good.insts());
    assert_eq!(quarantined_files(&dir).len(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_files_are_never_loadable_at_any_truncation_point() {
    let _g = gate();
    let mut t = Trace::new(TraceMeta::new("torn", 0));
    for i in 0..50u64 {
        t.push(RetiredInst::cond_branch(0x400 + i * 4, i % 2 == 0, 0x800, Some(1), None));
    }
    let mut bytes = Vec::new();
    t.write_to(&mut bytes).expect("serialize");
    // Every proper prefix must fail to decode — including "clean" cuts at
    // record boundaries and a cut that drops only the checksum trailer.
    for cut in [bytes.len() - 8, bytes.len() - 8 - 37, bytes.len() / 2, 10, 3] {
        let err = Trace::read_from(&bytes[..cut]).expect_err("prefix must not load");
        assert!(
            matches!(err, ReadTraceError::Io(_) | ReadTraceError::ChecksumMismatch { .. }),
            "cut at {cut}: unexpected {err:?}"
        );
    }
}

#[test]
fn concurrent_savers_and_loaders_never_observe_a_torn_file() {
    let _g = gate();
    let dir = scratch_dir("race");
    let path = dir.join("shared.bptr");

    // Two distinguishable traces under the same path: a reader must see
    // one of them in full, never a splice or a prefix.
    let make = |len: u64| {
        let mut t = Trace::new(TraceMeta::new("race", 0));
        for i in 0..len {
            t.push(RetiredInst::cond_branch(0x400 + i * 4, i % 3 == 0, 0x800, Some(1), None));
        }
        t
    };
    let a = make(400);
    let b = make(900);
    a.save(&path).expect("seed file");

    std::thread::scope(|scope| {
        for t in [&a, &b] {
            let path = &path;
            scope.spawn(move || {
                for _ in 0..60 {
                    t.save(path).expect("save");
                }
            });
        }
        for _ in 0..2 {
            scope.spawn(|| {
                for _ in 0..200 {
                    let loaded = Trace::load(&path).expect("load must always succeed");
                    assert!(
                        loaded.len() == a.len() || loaded.len() == b.len(),
                        "unexpected length {}",
                        loaded.len()
                    );
                    let full = if loaded.len() == a.len() { &a } else { &b };
                    assert_eq!(loaded.insts(), full.insts(), "spliced content");
                }
            });
        }
    });
    // The savers' temp files were all renamed or cleaned up.
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .expect("read dir")
        .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
        .filter(|n| n != "shared.bptr")
        .collect();
    assert!(leftovers.is_empty(), "{leftovers:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn try_map_panic_costs_one_slot_and_siblings_stay_byte_identical() {
    let _g = gate();
    let items: Vec<u64> = (0..40).collect();
    let f = |_: usize, &x: &u64| {
        assert!(x != 11 && x != 29, "sacrificial task {x}");
        (x as f64).sqrt().ln_1p()
    };
    let serial = Engine::with_threads(1).try_map(&items, f);
    for threads in 1..=16 {
        let out = Engine::with_threads(threads).try_map(&items, f);
        assert_eq!(out.len(), items.len());
        for (i, (got, want)) in out.iter().zip(&serial).enumerate() {
            match (got, want) {
                (Ok(g), Ok(w)) => {
                    assert_eq!(g.to_bits(), w.to_bits(), "item {i} at {threads} threads");
                }
                (Err(e), Err(_)) => {
                    assert!(i == 11 || i == 29, "unexpected failure at {i}");
                    assert_eq!(e.index, i);
                    assert_eq!(e.label, format!("#{i}"));
                    assert!(e.message.contains("sacrificial task"), "{}", e.message);
                }
                _ => panic!("item {i}: success/failure split differs from serial"),
            }
        }
    }
}

#[test]
fn injected_engine_task_panic_is_isolated_and_reported() {
    let _g = gate();
    // Fire on the 4th arrival at engine.task. With 1 thread, arrival
    // order is input order, so item index 3 fails.
    faultpoint::install_for_tests(Some("engine.task:panic@4"));
    let items: Vec<u32> = (0..8).collect();
    let out = Engine::with_threads(1).try_map(&items, |_, &x| x + 100);
    faultpoint::install_for_tests(None);
    for (i, r) in out.iter().enumerate() {
        if i == 3 {
            let e = r.as_ref().expect_err("task 3 must fail");
            assert_eq!(e.index, 3);
            assert!(e.message.contains("injected fault"), "{}", e.message);
        } else {
            assert_eq!(*r.as_ref().expect("sibling survives"), (i as u32) + 100);
        }
    }
}

#[test]
fn injected_transient_panic_is_absorbed_by_retry() {
    let _g = gate();
    faultpoint::install_for_tests(Some("engine.task:panic@2"));
    let items: Vec<u32> = (0..4).collect();
    let out = Engine::with_threads(1).try_map_with(&items, 1, |i, _| format!("w{i}"), |_, &x| x);
    faultpoint::install_for_tests(None);
    assert!(out.iter().all(Result::is_ok), "one retry absorbs a one-shot fault");
}

#[test]
fn injected_save_failure_degrades_to_memory_only_operation() {
    let _g = gate();
    let dir = scratch_dir("savefail");
    let spec = &specint_suite()[0];
    faultpoint::install_for_tests(Some("trace_store.save:fail"));
    let store = TraceStore::with_cache_dir(&dir);
    let t = store.get(spec, 0, 8_000);
    faultpoint::install_for_tests(None);
    assert_eq!(t.len(), 8_000);
    assert_eq!(store.stats().generated, 1);
    let files: Vec<_> = std::fs::read_dir(&dir)
        .expect("read dir")
        .map(|e| e.expect("entry").path())
        .collect();
    assert!(files.is_empty(), "persistence was suppressed: {files:?}");

    // Same key again, post-fault: memory cache still serves it.
    let again = store.get(spec, 0, 8_000);
    assert_eq!(store.stats().hits, 1);
    assert_eq!(again.insts(), t.insts());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_load_failure_quarantines_and_regenerates() {
    let _g = gate();
    let dir = scratch_dir("loadfail");
    let spec = &specint_suite()[1];
    let good = TraceStore::with_cache_dir(&dir).get(spec, 0, 8_000);

    // The file on disk is fine; the injected fault simulates an
    // unreadable/corrupt cache entry at load time.
    faultpoint::install_for_tests(Some("trace_store.load:fail@1"));
    let store = TraceStore::with_cache_dir(&dir);
    let t = store.get(spec, 0, 8_000);
    faultpoint::install_for_tests(None);
    assert_eq!(store.stats().corrupt, 1);
    assert_eq!(store.stats().generated, 1);
    assert_eq!(t.insts(), good.insts());
    assert_eq!(quarantined_files(&dir).len(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}
