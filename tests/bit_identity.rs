//! Bit-identity proof for the optimized replay hot path.
//!
//! `crates/predictors` keeps two TAGE-SC-L implementations: the optimized
//! structure-of-arrays hot path (`TageScL`) and the naive
//! array-of-structs reference it was derived from
//! (`bp_predictors::naive::NaiveTageScL`). Every optimization must be
//! behavior-preserving — the studies' golden fixtures depend on
//! byte-identical prediction streams (see `PERFORMANCE.md`). This suite
//! replays all nine SPECint-like workloads through both implementations
//! at multiple storage points and asserts:
//!
//! * the prediction stream matches branch-for-branch;
//! * periodic and final `state_digest` values match, i.e. every table
//!   counter, folded history, and policy counter ends identical.

use bp_predictors::naive::NaiveTageScL;
use bp_predictors::{Predictor, TageScL, TageSclConfig};
use bp_workloads::specint_suite;

/// Long enough to exercise allocation, u-reset aging (period 2^18 is not
/// reached — covered by the synthetic in-crate tests), loop confidence,
/// and SC threshold training on every workload, short enough to keep the
/// suite in seconds.
const TRACE_LEN: usize = 150_000;

/// Compare digests at this many dynamic-branch intervals, so a divergence
/// is localized to a window rather than reported only at the end.
const DIGEST_STRIDE: u64 = 10_000;

fn assert_bit_identical(config: &TageSclConfig, label: &str) {
    for spec in specint_suite() {
        let trace = spec.cached_trace(0, TRACE_LEN);
        let mut fast = TageScL::new(config.clone());
        let mut slow = NaiveTageScL::new(config.clone());
        let mut branches = 0u64;
        for br in trace.conditional_branches() {
            let pf = fast.predict(br.ip);
            let ps = slow.predict(br.ip);
            assert_eq!(
                pf, ps,
                "{label}/{}: prediction diverged at dynamic branch {branches} (ip {:#x})",
                spec.name, br.ip
            );
            fast.update(br.ip, br.taken, pf);
            slow.update(br.ip, br.taken, ps);
            branches += 1;
            if branches.is_multiple_of(DIGEST_STRIDE) {
                assert_eq!(
                    fast.state_digest(),
                    slow.state_digest(),
                    "{label}/{}: state diverged within branches {}..{branches}",
                    spec.name,
                    branches - DIGEST_STRIDE
                );
            }
        }
        assert!(
            branches > 5_000,
            "{label}/{}: trace too branch-light ({branches}) to prove anything",
            spec.name
        );
        assert_eq!(
            fast.state_digest(),
            slow.state_digest(),
            "{label}/{}: final state diverged after {branches} branches",
            spec.name
        );
    }
}

#[test]
fn optimized_matches_naive_at_8kb() {
    assert_bit_identical(&TageSclConfig::storage_kb(8), "tage-sc-l-8kb");
}

#[test]
fn optimized_matches_naive_at_64kb() {
    assert_bit_identical(&TageSclConfig::storage_kb(64), "tage-sc-l-64kb");
}

/// The ablation path (no SC, no loop predictor) exercises the bare TAGE
/// core arbitration, which the ensemble otherwise partially masks.
#[test]
fn optimized_matches_naive_tage_only() {
    assert_bit_identical(&TageSclConfig::tage_only(8), "tage-8kb");
}
