#!/usr/bin/env bash
# Local CI: build, test, lint. Run from anywhere; works on a clean checkout.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release --workspace

echo "== branch-lab CLI =="
# The registry-backed CLI is the single entry point every study bin shims
# into: `list` exercises registry wiring, and the smoke sweep drives the
# single-pass engine end-to-end (lockstep predictors + lane replay) on a
# trace small enough to finish in well under a second.
target/release/branch-lab list > /dev/null
BRANCH_LAB_TRACE_DIR="${BRANCH_LAB_TRACE_DIR:-target/ci-traces}" \
    target/release/branch-lab sweep --workload streaming \
    --predictors gshare,tage-sc-l-8kb,perfect --len 30000 > /dev/null

echo "== test =="
cargo test -q --workspace

echo "== golden (release) =="
# Share one trace cache across the golden runs so the leg stays fast; the
# fixtures themselves are independent of where traces are cached.
BRANCH_LAB_TRACE_DIR="${BRANCH_LAB_TRACE_DIR:-target/ci-traces}" \
    cargo test --release -q --test golden --test metrics_manifest

echo "== decode robustness =="
# Every file in the checked-in corpus of damaged BPTR traces (all three
# format versions) must decode to a structured error — never a panic or
# a hostile-length-sized allocation — and the 100M-branch scale run must
# round-trip at ≤ 1 byte/inst with peak RSS independent of trace length.
cargo test --release -q -p bp-trace --test decode_robustness
cargo test --release -q --test streaming_scale -- --include-ignored

echo "== differential (release) =="
# The lockstep sweep and lane-vector replay must be behaviour-preserving:
# every registered predictor spec trained as a lane digests identically
# to a solo run, every replay lane matches the scalar path bit-for-bit
# (including ragged lane groups and the u64 cycle fallback), and the
# single-pass grid equals per-config invocations at any thread count.
BRANCH_LAB_TRACE_DIR="${BRANCH_LAB_TRACE_DIR:-target/ci-traces}" \
    cargo test --release -q --test differential --test grid_parity
cargo test --release -q -p bp-pipeline --test lane_properties

echo "== sampled replay =="
# The sampled-replay gates: streamed-vs-materialized feature parity, the
# full-suite standard-scale containment sweep, and the ≥2M-branch
# streamed trace reconstructing MPKI within tolerance of its full-replay
# golden — all from the release build so the scale runs stay fast.
BRANCH_LAB_TRACE_DIR="${BRANCH_LAB_TRACE_DIR:-target/ci-traces}" \
    cargo test --release -q --test sampled_replay -- --include-ignored

# The sampled study report must be byte-identical at any thread count
# (workloads run sequentially precisely so thread scheduling can't
# reorder or perturb the table).
SAMPLED_OUT=target/ci-sampled
rm -rf "$SAMPLED_OUT" && mkdir -p "$SAMPLED_OUT"
BRANCH_LAB_TRACE_DIR="${BRANCH_LAB_TRACE_DIR:-target/ci-traces}" BRANCH_LAB_THREADS=1 \
    target/release/branch-lab run sampled --quick > "$SAMPLED_OUT/t1.txt"
BRANCH_LAB_TRACE_DIR="${BRANCH_LAB_TRACE_DIR:-target/ci-traces}" BRANCH_LAB_THREADS=4 \
    target/release/branch-lab run sampled --quick > "$SAMPLED_OUT/t4.txt"
cmp "$SAMPLED_OUT/t1.txt" "$SAMPLED_OUT/t4.txt" \
    || { echo "sampled leg: report must be byte-identical across thread counts"; exit 1; }
grep -q "sampled replay: interval" "$SAMPLED_OUT/t1.txt" \
    || { echo "sampled leg: report missing the resolved sampling banner"; exit 1; }

echo "== fault injection =="
cargo test --release -q --test fault_tolerance

# One keep-going sweep with a deterministically injected child failure:
# the runner must finish the other children, print the summary table,
# write a partial all.json naming the failed child, and exit nonzero —
# then a --resume run must re-run only the failed child.
FAULT_SINK=target/ci-fault-metrics
rm -rf "$FAULT_SINK" && mkdir -p "$FAULT_SINK"
set +e
BRANCH_LAB_FAULTS=all.child.fig3:fail \
BRANCH_LAB_METRICS="$FAULT_SINK" \
BRANCH_LAB_TRACE_DIR="${BRANCH_LAB_TRACE_DIR:-target/ci-traces}" \
BRANCH_LAB_RETRY_DELAY_MS=10 \
    target/release/all --keep-going --quick \
    > "$FAULT_SINK/all.log" 2> "$FAULT_SINK/all.err"
rc=$?
set -e
[ "$rc" -ne 0 ] || { echo "fault leg: expected nonzero exit from all"; exit 1; }
grep -q "== all: per-child summary ==" "$FAULT_SINK/all.log"
grep -Eq "fig3 +failed: injected fault: child failure +2" "$FAULT_SINK/all.log"
grep -Eq "fig4 +ok +1" "$FAULT_SINK/all.log"
grep -q '"fig3": "failed: injected fault: child failure"' "$FAULT_SINK/all.json"
grep -q '"fig4": "ok"' "$FAULT_SINK/all.json"

BRANCH_LAB_METRICS="$FAULT_SINK" \
BRANCH_LAB_TRACE_DIR="${BRANCH_LAB_TRACE_DIR:-target/ci-traces}" \
    target/release/all --keep-going --resume --quick \
    > "$FAULT_SINK/resume.log" 2> "$FAULT_SINK/resume.err"
[ "$(grep -c 'skipped: already succeeded' "$FAULT_SINK/resume.log")" -eq 15 ] \
    || { echo "fault leg: resume should skip the 15 checkpointed children"; exit 1; }
grep -Eq "fig3 +ok +1" "$FAULT_SINK/resume.log"
grep -q '"fig3": "ok"' "$FAULT_SINK/all.json"

echo "== chaos harness =="
# Deterministic seeded fault schedules driven through the in-process
# `branch-lab all` executor: an injected mid-study engine panic, a forced
# per-study deadline expiry, and a corrupt trace cache must each be
# absorbed (retry / regenerate) with CSV outputs byte-identical to a
# clean run; an unrecovered failure must exit nonzero; and a memory
# budget far below the working set must degrade to disk streaming
# (eviction counters in the merged manifest) without changing results.
CHAOS_TRACES=target/ci-chaos-traces
CHAOS_OUT=target/ci-chaos
rm -rf "$CHAOS_TRACES" "$CHAOS_OUT" && mkdir -p "$CHAOS_OUT"

chaos_all() { # <tag> [VAR=val ...] -- extra env for this run
    local tag="$1"; shift
    env BRANCH_LAB_TRACE_DIR="$CHAOS_TRACES" BRANCH_LAB_RETRY_DELAY_MS=10 "$@" \
        target/release/branch-lab all --keep-going --quick --len 40000 \
        --csv "$CHAOS_OUT/$tag" \
        > "$CHAOS_OUT/$tag.log" 2>&1
}

chaos_all clean

chaos_all panic BRANCH_LAB_FAULTS=engine.task:panic@3 BRANCH_LAB_CHAOS_SEED=7
grep -q "injected fault: panic at engine.task" "$CHAOS_OUT/panic.log" \
    || { echo "chaos leg: panic schedule never fired"; exit 1; }
diff -r "$CHAOS_OUT/clean" "$CHAOS_OUT/panic"

chaos_all timeout BRANCH_LAB_FAULTS=exec.deadline.fig1:fail@1
grep -q "injected fault: deadline expired" "$CHAOS_OUT/timeout.log" \
    || { echo "chaos leg: deadline schedule never fired"; exit 1; }
grep -Eq "fig1 +ok +2" "$CHAOS_OUT/timeout.log" \
    || { echo "chaos leg: fig1 should recover on its second attempt"; exit 1; }
diff -r "$CHAOS_OUT/clean" "$CHAOS_OUT/timeout"

chaos_all corrupt BRANCH_LAB_FAULTS=trace_store.load:fail@1
grep -q "quarantined corrupt trace cache file" "$CHAOS_OUT/corrupt.log" \
    || { echo "chaos leg: corrupt-cache schedule never fired"; exit 1; }
diff -r "$CHAOS_OUT/clean" "$CHAOS_OUT/corrupt"

# Without --keep-going an unrecovered failure must abort the sweep and
# exit nonzero.
set +e
env BRANCH_LAB_TRACE_DIR="$CHAOS_TRACES" BRANCH_LAB_RETRY_DELAY_MS=10 \
    BRANCH_LAB_FAULTS=all.child.table1:fail \
    target/release/branch-lab all --quick --len 40000 \
    > "$CHAOS_OUT/unrecovered.log" 2>&1
rc=$?
set -e
[ "$rc" -ne 0 ] || { echo "chaos leg: unrecovered failure must exit nonzero"; exit 1; }
grep -Eq "table1 +failed: injected fault: child failure +2" "$CHAOS_OUT/unrecovered.log"
grep -q "not-run" "$CHAOS_OUT/unrecovered.log"

CHAOS_SINK="$CHAOS_OUT/membudget-metrics"
mkdir -p "$CHAOS_SINK"
chaos_all membudget BRANCH_LAB_MEM_BUDGET=4M BRANCH_LAB_METRICS="$CHAOS_SINK"
grep -q '"trace_store.evict"' "$CHAOS_SINK/all.json" \
    || { echo "chaos leg: memory governor never evicted under a 4M budget"; exit 1; }
diff -r "$CHAOS_OUT/clean" "$CHAOS_OUT/membudget"

echo "== serve =="
# The long-running study server must: serve a repeated request from the
# content-addressed cache without re-executing, coalesce two concurrent
# identical requests onto exactly one execution (serve.* counters),
# return bodies byte-identical to the equivalent CLI invocation, and —
# after a kill -9 plus on-disk corruption — quarantine the damaged entry
# (never serve it) while intact entries survive the restart.
SERVE_OUT=target/ci-serve
rm -rf "$SERVE_OUT" && mkdir -p "$SERVE_OUT/cache"

serve_start() { # <logfile> — a fresh log per start so the readiness
    # probe can never match a previous instance's banner.
    SERVE_LOG="$SERVE_OUT/$1"
    env BRANCH_LAB_TRACE_DIR="${BRANCH_LAB_TRACE_DIR:-target/ci-traces}" \
        target/release/branch-lab serve --addr 127.0.0.1:0 --workers 4 \
        --cache-dir "$SERVE_OUT/cache" > "$SERVE_LOG" 2>&1 &
    SERVE_PID=$!
    disown "$SERVE_PID" # silence job-control noise from the kill -9 below
    SERVE_ADDR=
    for _ in $(seq 100); do
        SERVE_ADDR=$(sed -n 's#.*listening on http://\([0-9.:]*\) .*#\1#p' "$SERVE_LOG")
        [ -n "$SERVE_ADDR" ] && break
        sleep 0.1
    done
    [ -n "$SERVE_ADDR" ] || { echo "serve leg: server never announced its address"; exit 1; }
}
smoke() { target/release/serve_smoke --addr "$SERVE_ADDR" "$@"; }

serve_start server1.log
RUN_REQ='{"study": "fig3", "quick": true, "len": 60000}'
smoke --post /run --body "$RUN_REQ" > "$SERVE_OUT/miss.txt" 2> "$SERVE_OUT/miss.err"
grep -q "cache=miss" "$SERVE_OUT/miss.err" || { echo "serve leg: first request must execute"; exit 1; }
smoke --post /run --body "$RUN_REQ" > "$SERVE_OUT/hit.txt" 2> "$SERVE_OUT/hit.err"
grep -q "cache=hit" "$SERVE_OUT/hit.err" || { echo "serve leg: repeat request must hit the cache"; exit 1; }
cmp "$SERVE_OUT/miss.txt" "$SERVE_OUT/hit.txt"

# Byte-identity: the served body is exactly the CLI's stdout.
env BRANCH_LAB_TRACE_DIR="${BRANCH_LAB_TRACE_DIR:-target/ci-traces}" \
    target/release/branch-lab run fig3 --quick --len 60000 > "$SERVE_OUT/cli.txt"
cmp "$SERVE_OUT/miss.txt" "$SERVE_OUT/cli.txt" \
    || { echo "serve leg: served body differs from CLI stdout"; exit 1; }

# Two concurrent identical requests on a fresh key: exactly one may
# report cache=miss (the execution); the other joins or hits.
CONC_REQ='{"study": "fig4", "quick": true, "len": 60000}'
smoke --post /run --body "$CONC_REQ" --concurrent 2 > "$SERVE_OUT/conc.txt" 2> "$SERVE_OUT/conc.err"
[ "$(grep -c 'cache=miss' "$SERVE_OUT/conc.err")" -eq 1 ] \
    || { echo "serve leg: concurrent identical requests must execute once"; cat "$SERVE_OUT/conc.err"; exit 1; }

# The counters agree: two executions total (fig3 once, fig4 once)
# across four study requests.
smoke --get /metrics > "$SERVE_OUT/metrics.json" 2> /dev/null
grep -q '"serve.exec": 2' "$SERVE_OUT/metrics.json" \
    || { echo "serve leg: expected exactly 2 executions"; cat "$SERVE_OUT/metrics.json"; exit 1; }

# Chaos: kill -9, corrupt the fig3 entry on disk as a torn write would,
# restart on the same cache directory.
kill -9 "$SERVE_PID" 2> /dev/null || true
wait "$SERVE_PID" 2> /dev/null || true
FIG3_KEY=$(sed -n 's/.*key=\([0-9a-f]\{16\}\)/\1/p' "$SERVE_OUT/miss.err" | head -n 1)
FIG3_ENTRY="$SERVE_OUT/cache/$FIG3_KEY.blr"
[ -f "$FIG3_ENTRY" ] || { echo "serve leg: fig3 entry never persisted"; exit 1; }
dd if=/dev/zero of="$FIG3_ENTRY" bs=1 count=8 seek=40 conv=notrunc 2> /dev/null

serve_start server2.log
smoke --post /run --body "$RUN_REQ" > "$SERVE_OUT/regen.txt" 2> "$SERVE_OUT/regen.err"
grep -q "cache=miss" "$SERVE_OUT/regen.err" \
    || { echo "serve leg: corrupt entry must re-execute, not serve"; exit 1; }
grep -q "quarantined corrupt cache entry" "$SERVE_OUT/server2.log" \
    || { echo "serve leg: corrupt entry must be quarantined"; exit 1; }
[ -f "$SERVE_OUT/cache/$FIG3_KEY.blr.corrupt" ] \
    || { echo "serve leg: quarantine file missing"; exit 1; }
cmp "$SERVE_OUT/regen.txt" "$SERVE_OUT/cli.txt" \
    || { echo "serve leg: regenerated body differs from CLI stdout"; exit 1; }

# The intact fig4 entry survived the kill -9 and serves from disk.
smoke --post /run --body "$CONC_REQ" > "$SERVE_OUT/survivor.txt" 2> "$SERVE_OUT/survivor.err"
grep -q "cache=hit-disk" "$SERVE_OUT/survivor.err" \
    || { echo "serve leg: intact entry must survive restart"; exit 1; }
cmp "$SERVE_OUT/survivor.txt" "$SERVE_OUT/conc.txt"
kill -9 "$SERVE_PID" 2> /dev/null || true
wait "$SERVE_PID" 2> /dev/null || true

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== docs =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== perf baseline =="
# Gate replay throughput against the checked-in BENCH_*.json (newest by
# filename, at the repo root); since 2026-08-08 the baseline also pins
# the v3 trace codec (`trace/encode-v3`, `trace/decode-v3`). The 50%
# threshold is a cliff detector for accidental slowdowns, not a
# micro-benchmark gate — CI machines vary.
# Refresh workflow: EXPERIMENTS.md "Replay throughput & the perf baseline".
BRANCH_LAB_TRACE_DIR="${BRANCH_LAB_TRACE_DIR:-target/ci-traces}" \
    cargo run --release -q -p bp-bench --bin bp-perf -- \
    --check-baseline --threshold 0.5 --samples 3

echo "ci: all checks passed"
