#!/usr/bin/env bash
# Local CI: build, test, lint. Run from anywhere; works on a clean checkout.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release --workspace

echo "== test =="
cargo test -q --workspace

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "ci: all checks passed"
