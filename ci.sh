#!/usr/bin/env bash
# Local CI: build, test, lint. Run from anywhere; works on a clean checkout.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release --workspace

echo "== branch-lab CLI =="
# The registry-backed CLI is the single entry point every study bin shims
# into: `list` exercises registry wiring, and the smoke sweep drives the
# single-pass engine end-to-end (lockstep predictors + lane replay) on a
# trace small enough to finish in well under a second.
target/release/branch-lab list > /dev/null
BRANCH_LAB_TRACE_DIR="${BRANCH_LAB_TRACE_DIR:-target/ci-traces}" \
    target/release/branch-lab sweep --workload streaming \
    --predictors gshare,tage-sc-l-8kb,perfect --len 30000 > /dev/null

echo "== test =="
cargo test -q --workspace

echo "== golden (release) =="
# Share one trace cache across the golden runs so the leg stays fast; the
# fixtures themselves are independent of where traces are cached.
BRANCH_LAB_TRACE_DIR="${BRANCH_LAB_TRACE_DIR:-target/ci-traces}" \
    cargo test --release -q --test golden --test metrics_manifest

echo "== decode robustness =="
# Every file in the checked-in corpus of damaged BPTR traces (all three
# format versions) must decode to a structured error — never a panic or
# a hostile-length-sized allocation — and the 100M-branch scale run must
# round-trip at ≤ 1 byte/inst with peak RSS independent of trace length.
cargo test --release -q -p bp-trace --test decode_robustness
cargo test --release -q --test streaming_scale -- --include-ignored

echo "== differential (release) =="
# The lockstep sweep and lane-vector replay must be behaviour-preserving:
# every registered predictor spec trained as a lane digests identically
# to a solo run, every replay lane matches the scalar path bit-for-bit
# (including ragged lane groups and the u64 cycle fallback), and the
# single-pass grid equals per-config invocations at any thread count.
BRANCH_LAB_TRACE_DIR="${BRANCH_LAB_TRACE_DIR:-target/ci-traces}" \
    cargo test --release -q --test differential --test grid_parity
cargo test --release -q -p bp-pipeline --test lane_properties

echo "== fault injection =="
cargo test --release -q --test fault_tolerance

# One keep-going sweep with a deterministically injected child failure:
# the runner must finish the other children, print the summary table,
# write a partial all.json naming the failed child, and exit nonzero —
# then a --resume run must re-run only the failed child.
FAULT_SINK=target/ci-fault-metrics
rm -rf "$FAULT_SINK" && mkdir -p "$FAULT_SINK"
set +e
BRANCH_LAB_FAULTS=all.child.fig3:fail \
BRANCH_LAB_METRICS="$FAULT_SINK" \
BRANCH_LAB_TRACE_DIR="${BRANCH_LAB_TRACE_DIR:-target/ci-traces}" \
BRANCH_LAB_RETRY_DELAY_MS=10 \
    target/release/all --keep-going --quick \
    > "$FAULT_SINK/all.log" 2> "$FAULT_SINK/all.err"
rc=$?
set -e
[ "$rc" -ne 0 ] || { echo "fault leg: expected nonzero exit from all"; exit 1; }
grep -q "== all: per-child summary ==" "$FAULT_SINK/all.log"
grep -Eq "fig3 +failed: injected fault: child failure +2" "$FAULT_SINK/all.log"
grep -Eq "fig4 +ok +1" "$FAULT_SINK/all.log"
grep -q '"fig3": "failed: injected fault: child failure"' "$FAULT_SINK/all.json"
grep -q '"fig4": "ok"' "$FAULT_SINK/all.json"

BRANCH_LAB_METRICS="$FAULT_SINK" \
BRANCH_LAB_TRACE_DIR="${BRANCH_LAB_TRACE_DIR:-target/ci-traces}" \
    target/release/all --keep-going --resume --quick \
    > "$FAULT_SINK/resume.log" 2> "$FAULT_SINK/resume.err"
[ "$(grep -c 'skipped: already succeeded' "$FAULT_SINK/resume.log")" -eq 15 ] \
    || { echo "fault leg: resume should skip the 15 checkpointed children"; exit 1; }
grep -Eq "fig3 +ok +1" "$FAULT_SINK/resume.log"
grep -q '"fig3": "ok"' "$FAULT_SINK/all.json"

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== docs =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== perf baseline =="
# Gate replay throughput against the checked-in BENCH_*.json (newest by
# filename, at the repo root); since 2026-08-08 the baseline also pins
# the v3 trace codec (`trace/encode-v3`, `trace/decode-v3`). The 50%
# threshold is a cliff detector for accidental slowdowns, not a
# micro-benchmark gate — CI machines vary.
# Refresh workflow: EXPERIMENTS.md "Replay throughput & the perf baseline".
BRANCH_LAB_TRACE_DIR="${BRANCH_LAB_TRACE_DIR:-target/ci-traces}" \
    cargo run --release -q -p bp-bench --bin bp-perf -- \
    --check-baseline --threshold 0.5 --samples 3

echo "ci: all checks passed"
