#!/usr/bin/env bash
# Local CI: build, test, lint. Run from anywhere; works on a clean checkout.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release --workspace

echo "== branch-lab CLI =="
# The registry-backed CLI is the single entry point every study bin shims
# into: `list` exercises registry wiring, and the smoke sweep drives the
# single-pass engine end-to-end (lockstep predictors + lane replay) on a
# trace small enough to finish in well under a second.
target/release/branch-lab list > /dev/null
BRANCH_LAB_TRACE_DIR="${BRANCH_LAB_TRACE_DIR:-target/ci-traces}" \
    target/release/branch-lab sweep --workload streaming \
    --predictors gshare,tage-sc-l-8kb,perfect --len 30000 > /dev/null

echo "== test =="
cargo test -q --workspace

echo "== golden (release) =="
# Share one trace cache across the golden runs so the leg stays fast; the
# fixtures themselves are independent of where traces are cached.
BRANCH_LAB_TRACE_DIR="${BRANCH_LAB_TRACE_DIR:-target/ci-traces}" \
    cargo test --release -q --test golden --test metrics_manifest

echo "== decode robustness =="
# Every file in the checked-in corpus of damaged BPTR traces (all three
# format versions) must decode to a structured error — never a panic or
# a hostile-length-sized allocation — and the 100M-branch scale run must
# round-trip at ≤ 1 byte/inst with peak RSS independent of trace length.
cargo test --release -q -p bp-trace --test decode_robustness
cargo test --release -q --test streaming_scale -- --include-ignored

echo "== differential (release) =="
# The lockstep sweep and lane-vector replay must be behaviour-preserving:
# every registered predictor spec trained as a lane digests identically
# to a solo run, every replay lane matches the scalar path bit-for-bit
# (including ragged lane groups and the u64 cycle fallback), and the
# single-pass grid equals per-config invocations at any thread count.
BRANCH_LAB_TRACE_DIR="${BRANCH_LAB_TRACE_DIR:-target/ci-traces}" \
    cargo test --release -q --test differential --test grid_parity
cargo test --release -q -p bp-pipeline --test lane_properties

echo "== fault injection =="
cargo test --release -q --test fault_tolerance

# One keep-going sweep with a deterministically injected child failure:
# the runner must finish the other children, print the summary table,
# write a partial all.json naming the failed child, and exit nonzero —
# then a --resume run must re-run only the failed child.
FAULT_SINK=target/ci-fault-metrics
rm -rf "$FAULT_SINK" && mkdir -p "$FAULT_SINK"
set +e
BRANCH_LAB_FAULTS=all.child.fig3:fail \
BRANCH_LAB_METRICS="$FAULT_SINK" \
BRANCH_LAB_TRACE_DIR="${BRANCH_LAB_TRACE_DIR:-target/ci-traces}" \
BRANCH_LAB_RETRY_DELAY_MS=10 \
    target/release/all --keep-going --quick \
    > "$FAULT_SINK/all.log" 2> "$FAULT_SINK/all.err"
rc=$?
set -e
[ "$rc" -ne 0 ] || { echo "fault leg: expected nonzero exit from all"; exit 1; }
grep -q "== all: per-child summary ==" "$FAULT_SINK/all.log"
grep -Eq "fig3 +failed: injected fault: child failure +2" "$FAULT_SINK/all.log"
grep -Eq "fig4 +ok +1" "$FAULT_SINK/all.log"
grep -q '"fig3": "failed: injected fault: child failure"' "$FAULT_SINK/all.json"
grep -q '"fig4": "ok"' "$FAULT_SINK/all.json"

BRANCH_LAB_METRICS="$FAULT_SINK" \
BRANCH_LAB_TRACE_DIR="${BRANCH_LAB_TRACE_DIR:-target/ci-traces}" \
    target/release/all --keep-going --resume --quick \
    > "$FAULT_SINK/resume.log" 2> "$FAULT_SINK/resume.err"
[ "$(grep -c 'skipped: already succeeded' "$FAULT_SINK/resume.log")" -eq 15 ] \
    || { echo "fault leg: resume should skip the 15 checkpointed children"; exit 1; }
grep -Eq "fig3 +ok +1" "$FAULT_SINK/resume.log"
grep -q '"fig3": "ok"' "$FAULT_SINK/all.json"

echo "== chaos harness =="
# Deterministic seeded fault schedules driven through the in-process
# `branch-lab all` executor: an injected mid-study engine panic, a forced
# per-study deadline expiry, and a corrupt trace cache must each be
# absorbed (retry / regenerate) with CSV outputs byte-identical to a
# clean run; an unrecovered failure must exit nonzero; and a memory
# budget far below the working set must degrade to disk streaming
# (eviction counters in the merged manifest) without changing results.
CHAOS_TRACES=target/ci-chaos-traces
CHAOS_OUT=target/ci-chaos
rm -rf "$CHAOS_TRACES" "$CHAOS_OUT" && mkdir -p "$CHAOS_OUT"

chaos_all() { # <tag> [VAR=val ...] -- extra env for this run
    local tag="$1"; shift
    env BRANCH_LAB_TRACE_DIR="$CHAOS_TRACES" BRANCH_LAB_RETRY_DELAY_MS=10 "$@" \
        target/release/branch-lab all --keep-going --quick --len 40000 \
        --csv "$CHAOS_OUT/$tag" \
        > "$CHAOS_OUT/$tag.log" 2>&1
}

chaos_all clean

chaos_all panic BRANCH_LAB_FAULTS=engine.task:panic@3 BRANCH_LAB_CHAOS_SEED=7
grep -q "injected fault: panic at engine.task" "$CHAOS_OUT/panic.log" \
    || { echo "chaos leg: panic schedule never fired"; exit 1; }
diff -r "$CHAOS_OUT/clean" "$CHAOS_OUT/panic"

chaos_all timeout BRANCH_LAB_FAULTS=exec.deadline.fig1:fail@1
grep -q "injected fault: deadline expired" "$CHAOS_OUT/timeout.log" \
    || { echo "chaos leg: deadline schedule never fired"; exit 1; }
grep -Eq "fig1 +ok +2" "$CHAOS_OUT/timeout.log" \
    || { echo "chaos leg: fig1 should recover on its second attempt"; exit 1; }
diff -r "$CHAOS_OUT/clean" "$CHAOS_OUT/timeout"

chaos_all corrupt BRANCH_LAB_FAULTS=trace_store.load:fail@1
grep -q "quarantined corrupt trace cache file" "$CHAOS_OUT/corrupt.log" \
    || { echo "chaos leg: corrupt-cache schedule never fired"; exit 1; }
diff -r "$CHAOS_OUT/clean" "$CHAOS_OUT/corrupt"

# Without --keep-going an unrecovered failure must abort the sweep and
# exit nonzero.
set +e
env BRANCH_LAB_TRACE_DIR="$CHAOS_TRACES" BRANCH_LAB_RETRY_DELAY_MS=10 \
    BRANCH_LAB_FAULTS=all.child.table1:fail \
    target/release/branch-lab all --quick --len 40000 \
    > "$CHAOS_OUT/unrecovered.log" 2>&1
rc=$?
set -e
[ "$rc" -ne 0 ] || { echo "chaos leg: unrecovered failure must exit nonzero"; exit 1; }
grep -Eq "table1 +failed: injected fault: child failure +2" "$CHAOS_OUT/unrecovered.log"
grep -q "not-run" "$CHAOS_OUT/unrecovered.log"

CHAOS_SINK="$CHAOS_OUT/membudget-metrics"
mkdir -p "$CHAOS_SINK"
chaos_all membudget BRANCH_LAB_MEM_BUDGET=4M BRANCH_LAB_METRICS="$CHAOS_SINK"
grep -q '"trace_store.evict"' "$CHAOS_SINK/all.json" \
    || { echo "chaos leg: memory governor never evicted under a 4M budget"; exit 1; }
diff -r "$CHAOS_OUT/clean" "$CHAOS_OUT/membudget"

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== docs =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== perf baseline =="
# Gate replay throughput against the checked-in BENCH_*.json (newest by
# filename, at the repo root); since 2026-08-08 the baseline also pins
# the v3 trace codec (`trace/encode-v3`, `trace/decode-v3`). The 50%
# threshold is a cliff detector for accidental slowdowns, not a
# micro-benchmark gate — CI machines vary.
# Refresh workflow: EXPERIMENTS.md "Replay throughput & the perf baseline".
BRANCH_LAB_TRACE_DIR="${BRANCH_LAB_TRACE_DIR:-target/ci-traces}" \
    cargo run --release -q -p bp-bench --bin bp-perf -- \
    --check-baseline --threshold 0.5 --samples 3

echo "ci: all checks passed"
