#!/usr/bin/env bash
# Local CI: build, test, lint. Run from anywhere; works on a clean checkout.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release --workspace

echo "== test =="
cargo test -q --workspace

echo "== golden (release) =="
# Share one trace cache across the golden runs so the leg stays fast; the
# fixtures themselves are independent of where traces are cached.
BRANCH_LAB_TRACE_DIR="${BRANCH_LAB_TRACE_DIR:-target/ci-traces}" \
    cargo test --release -q --test golden --test metrics_manifest

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "ci: all checks passed"
